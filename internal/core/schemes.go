// Package core implements the paper's primary contribution: the adaptive
// checkpointing schemes with additional store- and compare-checkpoints
// combined with dynamic voltage scaling (adapchp_dvs_SCP and
// adapchp_dvs_CCP, paper Figs. 6–7), their fixed-speed variants (Fig. 3),
// the DATE'03 comparator ADT_DVS, and the static Poisson-arrival and
// k-fault-tolerant baselines. Each scheme drives the Monte-Carlo engine
// of internal/sim.
package core

import (
	"fmt"
	"math"

	"repro/internal/analysis"
	"repro/internal/checkpoint"
	"repro/internal/cpu"
	"repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/sim"
)

// FixedCSCP is a static-interval, fixed-speed comparator scheme: CSCPs at
// a constant interval, no DVS, no additional checkpoints. The paper's
// "Poisson" and "k-f-t" baselines are both instances.
type FixedCSCP struct {
	name string
	// Freq is the single operating frequency the scheme runs at.
	Freq float64
	// interval returns the constant wall-clock CSCP interval for the run.
	interval func(p sim.Params, f float64) float64
}

// NewPoissonScheme returns the Poisson-arrival comparator at the given
// fixed frequency: constant interval sqrt(2C/λ) with C = c/f.
func NewPoissonScheme(freq float64) *FixedCSCP {
	return &FixedCSCP{
		name: fmt.Sprintf("Poisson(f=%g)", freq),
		Freq: freq,
		interval: func(p sim.Params, f float64) float64 {
			if p.Lambda == 0 {
				return p.Task.Cycles / f // one interval: no faults expected
			}
			return policy.I1(p.Costs.CSCPCycles()/f, p.Lambda)
		},
	}
}

// NewKFTScheme returns the k-fault-tolerant comparator at the given fixed
// frequency: constant interval sqrt(N·C/k) in wall time at speed f.
func NewKFTScheme(freq float64) *FixedCSCP {
	return &FixedCSCP{
		name: fmt.Sprintf("k-f-t(f=%g)", freq),
		Freq: freq,
		interval: func(p sim.Params, f float64) float64 {
			k := p.Task.FaultBudget
			if k < 1 {
				k = 1
			}
			return policy.I2(p.Task.Cycles/f, float64(k), p.Costs.CSCPCycles()/f)
		},
	}
}

// Both scheme families support the reusable run-context path.
var (
	_ sim.ContextScheme = (*FixedCSCP)(nil)
	_ sim.ContextScheme = (*Adaptive)(nil)
)

// Name implements Scheme.
func (s *FixedCSCP) Name() string { return s.name }

// Run implements Scheme.
func (s *FixedCSCP) Run(p sim.Params, src *rng.Source) sim.Result {
	return s.run(sim.NewEngine(p, src), p)
}

// RunCtx implements sim.ContextScheme: like Run, but reusing the
// context's engine buffers.
func (s *FixedCSCP) RunCtx(rc *sim.RunContext, p sim.Params, src *rng.Source) sim.Result {
	return s.run(rc.Engine(p, src), p)
}

func (s *FixedCSCP) run(e *sim.Engine, p sim.Params) sim.Result {
	pt, err := p.CPUModel().AtFreq(s.Freq)
	if err != nil {
		return e.Finish(false, sim.FailBadConfig)
	}
	e.SetSpeed(pt)
	itv := s.interval(p, pt.Freq)
	rc := p.Task.Cycles
	budget := p.MaxIntervalBudget()
	for i := 0; i < budget; i++ {
		rd := p.Task.Deadline - e.Now()
		if rc/pt.Freq > rd {
			return e.Finish(false, sim.FailInfeasible)
		}
		cur := minPos(itv, rc/pt.Freq)
		kept, _ := e.RunInterval(cur, 1, checkpoint.SCP, p.Task.Cycles-rc)
		rc -= kept
		if rc <= sim.EpsWork {
			if e.Now() <= p.Task.Deadline {
				return e.Finish(true, sim.FailNone)
			}
			return e.Finish(false, sim.FailDeadline)
		}
	}
	return e.Finish(false, sim.FailGuard)
}

// Adaptive is the unified adaptive checkpointing scheme of the paper:
// CSCP intervals chosen by the DATE'03 interval() procedure, optionally
// subdivided by additional SCPs or CCPs (num_SCP/num_CCP of Fig. 2),
// optionally combined with two-speed DVS (Figs. 6 and 7).
type Adaptive struct {
	name string
	// Sub is the flavour of the additional checkpoints (SCP or CCP).
	Sub checkpoint.Kind
	// UseSub enables the additional checkpoints; false gives the
	// CSCP-only DATE'03 scheme (the paper's A_D comparator).
	UseSub bool
	// DVS enables the two-speed voltage scaling decision; false runs at
	// FixedFreq throughout (the Fig. 3 scheme).
	DVS bool
	// FixedFreq is the operating frequency when DVS is off.
	FixedFreq float64
	// EstimateLambdaPrior, when positive, makes the scheme estimate the
	// fault rate online instead of trusting Params.Lambda: the planning
	// rate is the posterior mean of a Gamma(1, 1/prior) model updated
	// with observed detections over useful-execution exposure,
	// λ̂ = (1 + detections)/(1/prior + exposure). This realises the
	// paper's "tune the scheme to the specific system which it is
	// implemented on" without a priori knowledge of λ. Zero trusts
	// Params.Lambda (the paper's evaluation setting).
	EstimateLambdaPrior float64
	// EagerSpeedReeval re-evaluates the DVS decision bidirectionally
	// before every interval (an idealised governor). The default
	// (false) follows the paper: the speed is picked at the start
	// (Fig. 6 line 2) and re-examined only at fault recoveries (line
	// 15), and recovery may only lower the speed, never raise it. Both
	// the literal-reading energy figures (fault-free runs stay fast:
	// E ≈ 74k at U=0.92, k=1) and the sub-unit completion probabilities
	// at k=1 (a fault after a marginal downshift cannot be rescued by
	// upshifting, so P ≈ 1 − P(second fault breaches the slack))
	// require exactly this one-directional behaviour. The eager variant
	// is the ablation knob behind BenchmarkAblationDVS.
	EagerSpeedReeval bool
}

// NewADTDVS returns the DATE'03 comparator A_D: adaptive intervals,
// CSCPs only, two-speed DVS.
func NewADTDVS() *Adaptive {
	return &Adaptive{name: "A_D", Sub: checkpoint.CCP, UseSub: false, DVS: true}
}

// NewAdaptDVSSCP returns the paper's adapchp_dvs_SCP (A_D_S, Fig. 6).
func NewAdaptDVSSCP() *Adaptive {
	return &Adaptive{name: "A_D_S", Sub: checkpoint.SCP, UseSub: true, DVS: true}
}

// NewAdaptDVSCCP returns the paper's adapchp_dvs_CCP (A_D_C, Fig. 7).
func NewAdaptDVSCCP() *Adaptive {
	return &Adaptive{name: "A_D_C", Sub: checkpoint.CCP, UseSub: true, DVS: true}
}

// NewAdaptSCP returns the fixed-speed adaptive SCP scheme of Fig. 3
// (adapchp-SCP), running at the given frequency.
func NewAdaptSCP(freq float64) *Adaptive {
	return &Adaptive{
		name: fmt.Sprintf("adapchp-SCP(f=%g)", freq),
		Sub:  checkpoint.SCP, UseSub: true, FixedFreq: freq,
	}
}

// NewAdaptCCP returns the fixed-speed adaptive CCP scheme (the CCP
// analogue of Fig. 3), running at the given frequency.
func NewAdaptCCP(freq float64) *Adaptive {
	return &Adaptive{
		name: fmt.Sprintf("adapchp-CCP(f=%g)", freq),
		Sub:  checkpoint.CCP, UseSub: true, FixedFreq: freq,
	}
}

// Name implements Scheme.
func (s *Adaptive) Name() string { return s.name }

// WithOnlineLambda returns a copy of the scheme that estimates the
// fault rate online from the given prior instead of trusting
// Params.Lambda (see EstimateLambdaPrior).
func (s *Adaptive) WithOnlineLambda(prior float64) *Adaptive {
	c := *s
	c.EstimateLambdaPrior = prior
	c.name = s.name + "+est"
	return &c
}

// WithEagerDVS returns a copy of the scheme whose DVS decision (and
// interval plan) is re-evaluated bidirectionally before every interval
// instead of only at fault recoveries — the idealised-governor ablation.
func (s *Adaptive) WithEagerDVS() *Adaptive {
	c := *s
	c.EagerSpeedReeval = true
	c.name = s.name + "+eager"
	return &c
}

// pickSpeed returns the slowest operating point whose fault-aware time
// estimate t_est fits the remaining deadline, or the fastest point if
// none does (paper §3: "voltage scaling is feasible if t_est ≤ Rd").
// c is the CSCP cost in minimum-speed cycles.
func (s *Adaptive) pickSpeed(model *cpu.Model, c, lambda, rc, rd float64) cpu.OperatingPoint {
	for _, pt := range model.Points() {
		if analysis.TEst(rc, pt.Freq, c, lambda) <= rd {
			return pt
		}
	}
	return model.Max()
}

// Run implements Scheme.
//
// Following Figs. 6/7 faithfully, the speed decision, the CSCP interval
// and the sub-interval count are taken at the start of execution (lines
// 2–4) and re-taken after every fault recovery (lines 15–17) — *not* at
// every checkpoint. Re-planning each interval would shrink the
// k-fault-tolerant interval sqrt(Rt·C/k) as Rt falls and double the
// fault-free overhead (the ∫dRt/sqrt(Rt) effect), which contradicts the
// fault-free completion probabilities the paper reports.
func (s *Adaptive) Run(p sim.Params, src *rng.Source) sim.Result {
	return s.run(sim.NewEngine(p, src), s.plannerFor(nil, p), p)
}

// RunCtx implements sim.ContextScheme: like Run, but reusing the
// context's engine buffers and its cached Planner (plan memo included)
// across repetitions of the same cell.
func (s *Adaptive) RunCtx(rc *sim.RunContext, p sim.Params, src *rng.Source) sim.Result {
	return s.run(rc.Engine(p, src), s.plannerFor(rc, p), p)
}

// run is the shared scheme body: a thin loop over the Planner and the
// Engine. All planning logic lives in Planner.compute.
func (s *Adaptive) run(e *sim.Engine, pl *Planner, p sim.Params) sim.Result {
	rc := p.Task.Cycles
	rf := p.Task.FaultBudget

	// Planning fault rate: the given λ, or the online posterior mean
	// when estimation is enabled. The prior's pseudo-exposure 1/prior is
	// capped at one deadline: a belief weaker than "one fault per
	// deadline window" should not outweigh a full window of observation.
	detections := 0
	estimate := s.EstimateLambdaPrior > 0
	var pseudo float64
	if estimate {
		pseudo = math.Min(1/s.EstimateLambdaPrior, p.Task.Deadline)
	}

	// replan re-takes the speed decision (DVS only) and recomputes the
	// CSCP interval and sub-interval length from the current state.
	// It reports false on an unsatisfiable fixed-speed configuration.
	var itv, subLen float64
	replan := func() bool {
		lam := p.Lambda
		if estimate {
			lam = (1 + float64(detections)) / (pseudo + e.ExecClock())
		}
		pln := pl.Plan(rc, p.Task.Deadline-e.Now(), lam, rf)
		if pln.BadConfig {
			return false
		}
		e.SetSpeed(pln.Point)
		itv, subLen = pln.Interval, pln.SubLen
		return true
	}
	if !replan() {
		return e.Finish(false, sim.FailBadConfig)
	}

	budget := p.MaxIntervalBudget()
	for i := 0; i < budget; i++ {
		f := e.Speed().Freq
		rd := p.Task.Deadline - e.Now()
		if s.DVS && s.EagerSpeedReeval {
			replan()
			f = e.Speed().Freq
		}
		if rc/f > rd {
			return e.Finish(false, sim.FailInfeasible)
		}

		// The tail interval is clamped to the remaining work; its
		// sub-interval count keeps the planned sub-interval length.
		cur := minPos(itv, rc/f)
		m := 1
		if s.UseSub && subLen > 0 {
			m = int(math.Ceil(cur/subLen - 1e-9))
			if m < 1 {
				m = 1
			}
		}

		kept, detected := e.RunInterval(cur, m, s.Sub, p.Task.Cycles-rc)
		rc -= kept
		if detected {
			detections++
			if rf > 0 {
				rf--
			}
			replan() // Fig. 6 lines 15–17
		}
		if rc <= sim.EpsWork {
			if e.Now() <= p.Task.Deadline {
				return e.Finish(true, sim.FailNone)
			}
			return e.Finish(false, sim.FailDeadline)
		}
	}
	return e.Finish(false, sim.FailGuard)
}

// minPos is math.Min for operands known to be positive and finite (the
// interval clamp in the hot run loops): identical value and bits for
// such inputs, but inlinable — math.Min's ±0/NaN handling is an assembly
// intrinsic call on amd64, visible in profiles at this call frequency.
func minPos(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
