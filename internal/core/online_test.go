package core

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/cpu"
	"repro/internal/fault"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/task"
)

// misbeliefParams builds an environment whose true fault rate differs
// from the rate the planner is told: Params.Lambda carries the (wrong)
// belief, FaultProcess the (true) physics.
func misbeliefParams(t *testing.T, believed, actual float64) sim.Params {
	t.Helper()
	tk, err := task.FromUtilization("mis", 0.78, 1, 10000, 5)
	if err != nil {
		t.Fatal(err)
	}
	return sim.Params{
		Task:   tk,
		Costs:  checkpoint.SCPSetting(),
		Lambda: believed,
		FaultProcess: func(src *rng.Source) fault.Process {
			return fault.NewPoisson(actual, src)
		},
	}
}

func TestOnlineLambdaRecoversFromWrongPrior(t *testing.T) {
	// Planner believes λ = 1e-5; reality is 1.4e-3 (140× worse). The
	// static-belief scheme under-checkpoints and under-speeds; the
	// online estimator converges to the true rate and recovers most of
	// the completion probability of the correctly-informed scheme.
	const believed, actual = 1e-5, 1.4e-3
	p := misbeliefParams(t, believed, actual)

	static := NewAdaptDVSSCP()
	online := NewAdaptDVSSCP().WithOnlineLambda(believed)
	informed := NewAdaptDVSSCP()
	informedParams := misbeliefParams(t, actual, actual)

	pStatic, _ := runMany(t, static, p, 800, 31)
	pOnline, _ := runMany(t, online, p, 800, 32)
	pInformed, _ := runMany(t, informed, informedParams, 800, 33)

	if !(pOnline > pStatic+0.1) {
		t.Fatalf("online estimation did not help: static=%v online=%v", pStatic, pOnline)
	}
	// Convergence happens within a single task execution, so the online
	// scheme cannot fully match the informed one — but it must recover
	// the bulk of the gap.
	if gotBack := (pOnline - pStatic) / (pInformed - pStatic + 1e-12); gotBack < 0.6 {
		t.Fatalf("online recovered only %.0f%% of the gap (static=%v online=%v informed=%v)",
			100*gotBack, pStatic, pOnline, pInformed)
	}
}

func TestOnlineLambdaHarmlessWhenPriorRight(t *testing.T) {
	// With a correct prior the estimator must not hurt.
	tk, _ := task.FromUtilization("ok", 0.78, 1, 10000, 5)
	p := sim.Params{Task: tk, Costs: checkpoint.SCPSetting(), Lambda: 0.0014}
	pKnown, eKnown := runMany(t, NewAdaptDVSSCP(), p, 800, 34)
	pOnline, eOnline := runMany(t, NewAdaptDVSSCP().WithOnlineLambda(0.0014), p, 800, 35)
	if pOnline < pKnown-0.02 {
		t.Fatalf("estimator hurt P with a correct prior: %v vs %v", pOnline, pKnown)
	}
	if eOnline > 1.1*eKnown {
		t.Fatalf("estimator wasted energy with a correct prior: %v vs %v", eOnline, eKnown)
	}
}

func TestOnlineLambdaName(t *testing.T) {
	if got := NewAdaptDVSSCP().WithOnlineLambda(1e-4).Name(); got != "A_D_S+est" {
		t.Fatalf("name = %q", got)
	}
}

func TestEagerName(t *testing.T) {
	if got := NewAdaptDVSSCP().WithEagerDVS().Name(); got != "A_D_S+eager" {
		t.Fatalf("name = %q", got)
	}
}

func TestEagerVariantTradesEnergyForP(t *testing.T) {
	// The idealised every-interval governor must save energy vs the
	// fault-only replan at the same cell (the BenchmarkAblationDVS
	// claim, asserted as a test).
	tk, _ := task.FromUtilization("abl", 0.78, 1, 10000, 5)
	p := sim.Params{Task: tk, Costs: checkpoint.SCPSetting(), Lambda: 0.0014}
	_, ePaper := runMany(t, NewAdaptDVSSCP(), p, 800, 36)
	pEager, eEager := runMany(t, NewAdaptDVSSCP().WithEagerDVS(), p, 800, 37)
	if !(eEager < ePaper) {
		t.Fatalf("eager governor should save energy: %v vs %v", eEager, ePaper)
	}
	if pEager < 0.9 {
		t.Fatalf("eager governor P collapsed: %v", pEager)
	}
}

func TestMultiLevelDVSUsesIntermediateSpeeds(t *testing.T) {
	// Extension: with a 4-point DVS table, the adaptive scheme should
	// settle on an intermediate speed when f1 is infeasible but f2 is
	// overkill, saving energy over the two-speed part.
	model4, err := cpu.NewModel([]cpu.OperatingPoint{
		{Freq: 1, Voltage: cpu.DefaultVoltage(1)},
		{Freq: 1.25, Voltage: cpu.DefaultVoltage(1.25)},
		{Freq: 1.5, Voltage: cpu.DefaultVoltage(1.5)},
		{Freq: 2, Voltage: cpu.DefaultVoltage(2)},
	}, 0)
	if err != nil {
		t.Fatal(err)
	}
	tk, _ := task.FromUtilization("multi", 1.05, 1, 10000, 5)
	p2 := sim.Params{Task: tk, Costs: checkpoint.SCPSetting(), Lambda: 5e-4}
	p4 := p2
	p4.CPU = model4

	pTwo, eTwo := runMany(t, NewAdaptDVSSCP(), p2, 600, 41)
	pFour, eFour := runMany(t, NewAdaptDVSSCP(), p4, 600, 42)
	if pTwo < 0.95 || pFour < 0.95 {
		t.Fatalf("completion collapsed: two=%v four=%v", pTwo, pFour)
	}
	if !(eFour < eTwo) {
		t.Fatalf("finer DVS table should save energy: four=%v two=%v", eFour, eTwo)
	}
}
