package core

import (
	"math"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/cpu"
	"repro/internal/task"
)

// foldRange maps an arbitrary float64 into [lo, hi), absorbing NaN and
// infinities, so the fuzzer explores the planner's whole input envelope
// without wasting executions on rejected inputs.
func foldRange(x, lo, hi float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return lo
	}
	return lo + math.Mod(math.Abs(x), hi-lo)
}

// FuzzPlannerChoose drives Planner.Plan across the planning state space
// (remaining work, remaining deadline, fault rate, fault budget) and
// the scheme configuration space (sub-checkpoint kind, DVS on/off,
// fixed frequencies — including ones the CPU model lacks), checking the
// planner's contract rather than specific values:
//
//   - it never panics and never hangs, including on degenerate states
//     (rc ≤ 0, rd ≤ 0, λ = 0, zero-cost sub-checkpoints);
//   - every plan has a positive interval and a positive sub-interval no
//     longer than the interval, unless the configuration is reported
//     BadConfig;
//   - planning is a pure function of its inputs: a fresh planner and a
//     warm memoised planner return bit-identical plans.
func FuzzPlannerChoose(f *testing.F) {
	f.Add(7800.0, 10000.0, 0.0014, 5, uint8(0b011))
	f.Add(7800.0, 10000.0, 0.0, 5, uint8(0b111))
	f.Add(1e9, 1.0, 0.5, 0, uint8(0b001))
	f.Add(-3.0, -4.0, 0.1, 2, uint8(0b010))
	f.Add(1e-6, 1e9, 1e-9, 100, uint8(0b101))
	f.Fuzz(func(t *testing.T, rc, rd, lam float64, rf int, cfgBits uint8) {
		// Fold the raw inputs into the envelope the engine can produce:
		// finite work/deadline (including the ≤0 degenerate corner the
		// planner documents), λ in [0, 0.5], a small fault budget.
		rc = foldRange(rc, -10, 1e9)
		rd = foldRange(rd, -10, 1e9)
		lam = foldRange(lam, 0, 0.5)
		rf = rf % 128 // policy.Interval clamps negatives itself

		cfg := Adaptive{
			Sub:    checkpoint.SCP,
			UseSub: cfgBits&1 != 0,
			DVS:    cfgBits&2 != 0,
		}
		if cfgBits&4 != 0 {
			cfg.Sub = checkpoint.CCP
		}
		costs := checkpoint.SCPSetting()
		switch (cfgBits >> 3) & 3 {
		case 1:
			costs = checkpoint.CCPSetting()
		case 2:
			// Zero sub-checkpoint cost is valid per Costs.Validate and
			// makes the renewal curve monotone — the NumSub walk must
			// stay bounded.
			costs = checkpoint.Costs{Store: 0, Compare: 5, Rollback: 1}
		}
		if !cfg.DVS {
			model := cpu.TwoSpeed()
			switch (cfgBits >> 5) & 3 {
			case 0:
				cfg.FixedFreq = model.Max().Freq
			case 1:
				cfg.FixedFreq = model.Min().Freq
			default:
				cfg.FixedFreq = 0.123 // not an operating point: BadConfig path
			}
		}
		tk := task.Task{Name: "fuzz", Cycles: 7800, Deadline: 10000, FaultBudget: 5}

		pl := NewPlanner(cfg, cpu.TwoSpeed(), costs, tk)
		plan := pl.Plan(rc, rd, lam, rf)
		if plan.BadConfig {
			if cfg.DVS {
				t.Fatalf("DVS planner reported BadConfig for rc=%v rd=%v lam=%v rf=%d", rc, rd, lam, rf)
			}
			return
		}
		if !(plan.Interval > 0) || math.IsInf(plan.Interval, 0) {
			t.Fatalf("non-positive or infinite interval %v (rc=%v rd=%v lam=%v rf=%d cfg=%+v)",
				plan.Interval, rc, rd, lam, rf, cfg)
		}
		if !(plan.SubLen > 0) || plan.SubLen > plan.Interval {
			t.Fatalf("sub-interval %v outside (0, %v] (rc=%v rd=%v lam=%v rf=%d cfg=%+v)",
				plan.SubLen, plan.Interval, rc, rd, lam, rf, cfg)
		}
		if plan.Point.Freq <= 0 {
			t.Fatalf("non-positive planned frequency %v", plan.Point.Freq)
		}

		// Purity: the memoised replay and a cold planner agree bit-for-bit.
		if again := pl.Plan(rc, rd, lam, rf); again != plan {
			t.Fatalf("warm replan diverged: %+v vs %+v", again, plan)
		}
		cold := NewPlanner(cfg, cpu.TwoSpeed(), costs, tk)
		cold.nocache = true
		if fresh := cold.Plan(rc, rd, lam, rf); fresh != plan {
			t.Fatalf("uncached plan diverged: %+v vs %+v", fresh, plan)
		}
	})
}
