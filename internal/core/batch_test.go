package core

import (
	"bytes"
	"fmt"
	"math"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
)

// shardSeeds derives a deterministic seed/key pair set, mimicking the
// experiment layer's counter-based identities.
func shardSeeds(base uint64, n int) (seeds, keys []uint64) {
	seeds = make([]uint64, n)
	keys = make([]uint64, n)
	for i := range seeds {
		seeds[i] = rng.Stream(base, i)
		keys[i] = rng.Stream(base^0xd1342543de82ef95, i)
	}
	return seeds, keys
}

// runScalarShard is the reference: n scalar context runs folded into a
// Shard, exactly as the experiment's fallback loop does.
func runScalarShard(s sim.Scheme, p sim.Params, seeds, keys []uint64) (out stats.Shard, panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	rctx := sim.NewRunContext()
	for i, seed := range seeds {
		res := sim.RunScheme(rctx, s, p, rctx.Reseed(seed))
		out.ObserveRun(keys[i], res.Completed, res.SilentCorruption,
			res.Energy, res.Time, float64(res.Faults), float64(res.Switches))
	}
	return out, false
}

// runBatchShard runs the same repetitions through the batch kernel.
// ok reports whether the scheme/params were batchable at all.
func runBatchShard(s sim.Scheme, p sim.Params, seeds, keys []uint64) (out stats.Shard, ok, panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	rctx := sim.NewRunContext()
	bctx := sim.NewBatchContext()
	if !sim.RunBatch(rctx, bctx, s, p, seeds) {
		return out, false, false
	}
	out.ObserveRuns(keys, bctx.Completed, bctx.Energy, bctx.Time, bctx.Faults, bctx.Switches)
	return out, true, false
}

func mustParams(t testing.TB, u, freq, lambda float64, k int, costs checkpoint.Costs) sim.Params {
	t.Helper()
	tk, err := task.FromUtilization(fmt.Sprintf("batch-U%.2f", u), u, freq, 10000, k)
	if err != nil {
		t.Fatalf("task: %v", err)
	}
	return sim.Params{Task: tk, Costs: costs, Lambda: lambda}
}

// batchSchemes is the full batchable scheme envelope: both baselines,
// the DATE'03 comparator, both paper schemes and the fixed-speed
// adaptive variants — at both operating frequencies, plus deliberately
// bad fixed frequencies (the BadConfig path must match too) — and the
// online-λ / eager-DVS ablation variants the round-two kernel brought
// inside the envelope.
func batchSchemes() []sim.Scheme {
	return []sim.Scheme{
		NewPoissonScheme(1), NewPoissonScheme(2), NewPoissonScheme(3), // 3: bad config
		NewKFTScheme(1), NewKFTScheme(2),
		NewADTDVS(),
		NewAdaptDVSSCP(), NewAdaptDVSCCP(),
		NewAdaptSCP(1), NewAdaptSCP(2), NewAdaptSCP(3), // 3: bad config
		NewAdaptCCP(1), NewAdaptCCP(2),
		NewAdaptDVSSCP().WithOnlineLambda(0.001),
		NewAdaptDVSCCP().WithOnlineLambda(0.01),
		NewAdaptDVSSCP().WithEagerDVS(),
		NewAdaptDVSCCP().WithEagerDVS(),
		NewAdaptDVSSCP().WithOnlineLambda(0.001).WithEagerDVS(),
	}
}

// TestBatchScalarEquivalence pins the tentpole invariant: for every
// batchable scheme over a grid spanning both cost settings, both fault
// budgets, λ = 0 and the paper's rates (plus a high-λ stress point that
// forces dense replanning), the batch kernel and the scalar reference
// produce byte-identical stats.Shard payloads.
func TestBatchScalarEquivalence(t *testing.T) {
	const reps = 64
	grid := []struct {
		u, lambda float64
		k         int
		costs     checkpoint.Costs
	}{
		{0.76, 0.0014, 5, checkpoint.SCPSetting()},
		{0.82, 0.0016, 5, checkpoint.SCPSetting()},
		{0.92, 1e-4, 1, checkpoint.SCPSetting()},
		{1.00, 2e-4, 1, checkpoint.SCPSetting()},
		{0.78, 0.0014, 5, checkpoint.CCPSetting()},
		{0.95, 2e-4, 1, checkpoint.CCPSetting()},
		{0.80, 0, 5, checkpoint.SCPSetting()},    // fault-free
		{0.76, 0.01, 5, checkpoint.SCPSetting()}, // dense faults, dense replans
		{0.76, 0.01, 0, checkpoint.CCPSetting()}, // zero fault budget
	}
	for _, g := range grid {
		for _, s := range batchSchemes() {
			name := fmt.Sprintf("%s/U%.2f/λ%g/k%d/ts%g", s.Name(), g.u, g.lambda, g.k, g.costs.Store)
			p := mustParams(t, g.u, 1, g.lambda, g.k, g.costs)
			base := rng.Stream(0xbeef, len(name)) ^ uint64(len(name))<<32
			seeds, keys := shardSeeds(base, reps)
			want, wantPanic := runScalarShard(s, p, seeds, keys)
			got, ok, gotPanic := runBatchShard(s, p, seeds, keys)
			if !ok {
				t.Errorf("%s: kernel refused a batchable configuration", name)
				continue
			}
			if wantPanic || gotPanic {
				if wantPanic != gotPanic {
					t.Errorf("%s: panic mismatch scalar=%v batch=%v", name, wantPanic, gotPanic)
				}
				continue
			}
			wb := want.AppendBinary(nil)
			gb := got.AppendBinary(nil)
			if !bytes.Equal(wb, gb) {
				ws, gs := want.Summary(), got.Summary()
				t.Errorf("%s: shard payloads differ\nscalar: P=%v E=%v T=%v F=%v S=%v\nbatch:  P=%v E=%v T=%v F=%v S=%v",
					name, ws.P, ws.E, ws.MeanTime, ws.MeanFaults, ws.MeanSwitches,
					gs.P, gs.E, gs.MeanTime, gs.MeanFaults, gs.MeanSwitches)
			}
		}
	}
}

// TestBatchLambdaRebind pins the plan cache across a λ sweep: the rate
// is part of every entry's key (the online estimator plans at
// continuous rates), so reusing one BatchContext across consecutive
// cells — where plannerFor hands back the *same* planner for every
// rate — must not serve a stale plan. This is exactly the worker-loop
// shape: one context, one planner, consecutive cells differing only
// in λ.
func TestBatchLambdaRebind(t *testing.T) {
	s := NewAdaptDVSSCP()
	rctx := sim.NewRunContext()
	bctx := sim.NewBatchContext()
	for _, lambda := range []float64{0.0014, 0.0016, 0.0014, 0.01, 0} {
		p := mustParams(t, 0.78, 1, lambda, 5, checkpoint.SCPSetting())
		seeds, keys := shardSeeds(0x10ba^math.Float64bits(lambda), 32)
		want, _ := runScalarShard(s, p, seeds, keys)
		if !sim.RunBatch(rctx, bctx, s, p, seeds) {
			t.Fatalf("λ=%g: kernel refused a batchable configuration", lambda)
		}
		var got stats.Shard
		got.ObserveRuns(keys, bctx.Completed, bctx.Energy, bctx.Time, bctx.Faults, bctx.Switches)
		if !bytes.Equal(want.AppendBinary(nil), got.AppendBinary(nil)) {
			t.Errorf("λ=%g: shard payloads differ after context reuse", lambda)
		}
	}
}

// TestBatchGateFallsBack pins the kernel envelope from both sides:
// configurations the kernel cannot reproduce bit-for-bit must refuse
// the batch (so the caller runs the scalar reference), never silently
// approximate — while the online-λ and eager-DVS ablations, scalar-only
// before the round-two kernel, must now be accepted so the E-table
// cells never fall back to the scalar loop.
func TestBatchGateFallsBack(t *testing.T) {
	p := mustParams(t, 0.8, 1, 0.0014, 5, checkpoint.SCPSetting())
	seeds, _ := shardSeeds(1, 4)
	rctx, bctx := sim.NewRunContext(), sim.NewBatchContext()

	traced := p
	traced.Trace = &sim.Trace{}
	if sim.RunBatch(rctx, bctx, NewAdaptDVSSCP(), traced, seeds) {
		t.Error("kernel accepted a traced run")
	}
	if !sim.RunBatch(rctx, bctx, NewAdaptDVSSCP().WithOnlineLambda(0.001), p, seeds) {
		t.Error("kernel refused online λ estimation (now inside the envelope)")
	}
	if !sim.RunBatch(rctx, bctx, NewAdaptDVSSCP().WithEagerDVS(), p, seeds) {
		t.Error("kernel refused the eager-DVS ablation (now inside the envelope)")
	}
	if !sim.RunBatch(rctx, bctx, NewAdaptDVSSCP().WithOnlineLambda(0.001).WithEagerDVS(), p, seeds) {
		t.Error("kernel refused combined online-λ + eager-DVS")
	}
}

// TestBatchPlannerLedger pins that batch planning flows through the
// context's planner counters: PlannerCacheStats must see both hits
// (repeated equivalence classes) and misses (first sightings) from a
// batched cell, so the telemetry ledger stays meaningful.
func TestBatchPlannerLedger(t *testing.T) {
	p := mustParams(t, 0.78, 1, 0.0016, 5, checkpoint.SCPSetting())
	seeds, _ := shardSeeds(7, 128)
	rctx, bctx := sim.NewRunContext(), sim.NewBatchContext()
	if !sim.RunBatch(rctx, bctx, NewAdaptDVSSCP(), p, seeds) {
		t.Fatal("kernel refused a batchable configuration")
	}
	hits, misses := PlannerCacheStats(rctx)
	if hits == 0 || misses == 0 {
		t.Fatalf("batch planner ledger empty: hits=%d misses=%d", hits, misses)
	}
}

// FuzzBatchScalarEquivalence drives the equivalence property over
// randomized task/fault/cost/scheme parameters: whatever the fuzzer
// finds, batch and scalar execution must agree byte for byte on the
// stats.Shard payload (or both reject/panic identically).
func FuzzBatchScalarEquivalence(f *testing.F) {
	f.Add(0.8, 0.0014, uint8(5), 2.0, 20.0, 0.0, uint8(0), uint8(8), uint64(42))
	f.Add(0.92, 1e-4, uint8(1), 20.0, 2.0, 0.0, uint8(3), uint8(4), uint64(7))
	f.Add(1.0, 0.0, uint8(0), 2.0, 20.0, 5.0, uint8(5), uint8(2), uint64(1))
	f.Add(0.76, 0.02, uint8(2), 1.0, 1.0, 1.0, uint8(7), uint8(6), uint64(99))
	f.Fuzz(func(t *testing.T, u, lambda float64, k uint8, store, compare, rollback float64, schemeSel, reps uint8, seed uint64) {
		// Sanitise into the validated-parameter envelope; the point is
		// randomized coverage inside it, not crash-hunting outside it
		// (Params.Validate guards the real entry points).
		if !(u > 0.05 && u <= 1.5) {
			t.Skip()
		}
		if math.IsNaN(lambda) || lambda < 0 || lambda > 0.05 {
			t.Skip()
		}
		// Checkpoint costs are clamped into [0.5, 100): a free store or
		// compare makes the optimal sub-interval count explode into the
		// millions (legitimately — sub-checkpoints cost nothing), which
		// turns single inputs into multi-second runs the fuzz engine
		// flags as hangs. Rollback may be zero (the paper's setting).
		clamp := func(v, lo float64) float64 {
			if !(v >= lo && v < 100) {
				return lo + math.Mod(math.Abs(v), 100-lo)
			}
			return v
		}
		costs := checkpoint.Costs{Store: clamp(store, 0.5), Compare: clamp(compare, 0.5), Rollback: clamp(rollback, 0)}
		if costs.Validate() != nil {
			t.Skip()
		}
		schemes := []sim.Scheme{
			NewPoissonScheme(1), NewPoissonScheme(2),
			NewKFTScheme(1),
			NewADTDVS(),
			NewAdaptDVSSCP(), NewAdaptDVSCCP(),
			NewAdaptSCP(1), NewAdaptCCP(2),
			NewAdaptDVSSCP().WithOnlineLambda(0.001),
			NewAdaptDVSCCP().WithOnlineLambda(0.01),
			NewAdaptDVSSCP().WithEagerDVS(),
			NewAdaptDVSSCP().WithOnlineLambda(0.001).WithEagerDVS(),
		}
		s := schemes[int(schemeSel)%len(schemes)]
		tk, err := task.FromUtilization("fuzz", u, 1, 10000, int(k%8))
		if err != nil {
			t.Skip()
		}
		// Bound the interval budget tightly: degenerate fuzzed costs can
		// yield thousands of sub-intervals per interval, and the fuzz
		// engine treats a >10s input as a hang. Both paths honour the
		// same budget, so equivalence is unaffected.
		p := sim.Params{Task: tk, Costs: costs, Lambda: lambda, MaxIntervals: 1500}
		if p.Validate() != nil {
			t.Skip()
		}
		n := int(reps%16) + 1
		seeds, keys := shardSeeds(seed, n)
		want, wantPanic := runScalarShard(s, p, seeds, keys)
		got, ok, gotPanic := runBatchShard(s, p, seeds, keys)
		if !ok {
			t.Fatal("kernel refused a batchable configuration")
		}
		if wantPanic != gotPanic {
			t.Fatalf("panic mismatch: scalar=%v batch=%v", wantPanic, gotPanic)
		}
		if wantPanic {
			return
		}
		if !bytes.Equal(want.AppendBinary(nil), got.AppendBinary(nil)) {
			t.Fatalf("shard payloads differ for %s u=%v λ=%v k=%d costs=%+v", s.Name(), u, lambda, k%8, costs)
		}
	})
}
