// Batched structure-of-arrays execution kernels: the warm Monte-Carlo
// path flattened. A batch is K repetitions of one cell; the kernel runs
// them rep-major through a loop that mirrors the scalar
// Engine/RunInterval machinery expression for expression — same float
// operations, same order — but with every layer of indirection removed:
// fault arrivals pre-materialised in bulk (fault.Arrivals over
// rng.ExpBatch) and consumed as straight-line walks over the times
// slice (no per-fault calls), per-repetition generator states derived
// in one structure-of-arrays pass (rng.StateBatch) instead of four
// dependent finaliser rounds per repetition, energy metering inlined to
// the two multiplies Meter.Segment performs, per-speed wall costs
// resolved once per batch, full-interval sub-division and energy
// increments hoisted out of the interval loop (identical inputs ⇒
// identical doubles, so the hoist is bit-free), and the shared
// fault-free prefix of the batch walked once and replayed by snapshot
// jump.
//
// The prefix-jump is the batch-shape win: until its first fault arrival
// a repetition is deterministic — no randomness, no replan, no speed
// switch — so every repetition of a cell follows one shared trajectory
// out of the gate. The kernel walks that trajectory once per batch with
// the live loop's exact operation sequence, snapshotting (t, energy,
// rc, x) at each interval top; a repetition binary-searches the
// interval its first arrival lands in and resumes there, and a
// repetition whose first arrival falls after execution ends takes the
// shared terminal state in O(1) (at the paper's low-λ cells that is
// most of the batch). The eager-DVS ablation replans every interval, so
// its fault-free trajectory carries evolving plan state the snapshots
// do not capture — those cells run the live loop from the start, still
// far cheaper than the scalar engine.
//
// Post-fault replans, by contrast, key on continuous (rc, rd) states:
// a fault's surviving work is quantised to span boundaries, but t (and
// so rd) accumulates a path-dependent mix of span, checkpoint and
// rollback durations, and the reachable set grows combinatorially with
// fault depth. Measured at the paper's fault-dense cells, ~4 in 5
// replans are first sightings no matter the cache size — so the batch
// plan cache is a compact 2048-set × 2-way array that catches the
// recurring fifth (and the hot initial plan) cheaply, packs an entry
// into one cache line, and otherwise leans on making the miss path
// (Planner.compute) fast rather than on hit rate. The planning λ is
// part of the key, so a λ sweep over one planner retains its entries
// and the online-λ estimator's continuous rates coexist in the same
// array.
//
// The scalar path stays as the reference implementation; the
// batch/scalar equivalence property and fuzz tests pin byte-identical
// stats.Shard payloads between the two.
package core

import (
	"fmt"
	"math"

	"repro/internal/checkpoint"
	"repro/internal/cpu"
	"repro/internal/sim"
)

// batchPlanSets × batchPlanWays is the batch plan cache's entry count,
// sized to hold a full published sub-table's planning states: Table 1a
// at the bench harness's 50 reps/cell visits ~7k distinct states, and
// since entries persist across table runs (planner-id keys, pooled
// worker contexts) a steady-state re-run hits on everything that fits —
// 16k entries turn the re-run miss rate from capacity-bound (~80% at
// the previous 4k entries) into conflict-only. Two ways per set keep
// the recurring classes of a fault-dense cell resident when a colliding
// first-sighting state would otherwise evict them. At 64 bytes an entry
// the array is 1 MiB per worker context, reused across cells and table
// runs via planner-id tagging (no per-cell clearing).
const (
	batchPlanSets = 8192
	batchPlanWays = 2
)

// batchPlanEntry is one cache way, packed into a single cache line
// (64 bytes): the exact (rc, rd, λ) state bits, the fault budget and
// planner id sharing a word, the planned interval lengths, and the
// operating point coarsened to an index into the batch's speedCosts
// table (badConfigIdx marks a BadConfig plan) — same plan inputs yield
// the same plan, so storing the coarse index instead of the full point
// is bit-free. The planner id in the key (instead of an invalidation
// epoch) lets entries survive cell switches: a worker sweeping a grid
// returns to each cell's pooled planner with its plans still resident.
type batchPlanEntry struct {
	rc, rd uint64
	lam    uint64
	rfID   uint64
	itv    float64
	sub    float64
	ptIdx  int32
	_      int32
}

// badConfigIdx is the ptIdx sentinel for a BadConfig plan.
const badConfigIdx = -1

// batchState is the per-BatchContext scratch of the adaptive kernel:
// the plan cache bound to the cell's Planner, plus the
// per-operating-point cost table. Every planner the context has served
// gets a stable small id (part of each entry's key), so rebinding to a
// previously seen planner finds its entries still valid.
type batchState struct {
	pl     *Planner
	plID   uint64
	ids    map[*Planner]uint64
	nextID uint64
	ents   []batchPlanEntry
	costs  []speedCosts

	// Fault-free prefix trajectory scratch (see buildPrefix): snapshots
	// of (t, energy, rc, x) at the top of each interval of the shared
	// no-fault trajectory, reused across batches.
	pxT, pxE, pxRC, pxX []float64
}

// speedCosts caches the wall-clock overhead durations and energy per
// cycle of one operating point — the values Engine.refreshSpeedCosts
// derives on every speed switch, computed once per batch here. The
// expressions match AtSpeed/EnergyPerCycle exactly.
type speedCosts struct {
	pt       cpu.OperatingPoint
	epc      float64
	wall     [3]float64
	rollback float64
}

// infTimes is the shared arrival view of a zero-rate repetition: a
// single sentinel past every horizon, so the span walks run without a
// rate branch and never index an empty slice. Read-only, shared by all
// workers.
var infTimes = []float64{math.Inf(1)}

// batchScratch returns b's kernel scratch, allocating it on first use.
// The fixed kernel uses it for the prefix-trajectory arrays alone; the
// adaptive kernel binds it to a planner via batchStateFor.
func batchScratch(b *sim.BatchContext) *batchState {
	st, ok := b.Scratch().(*batchState)
	if !ok {
		st = &batchState{ents: make([]batchPlanEntry, batchPlanSets*batchPlanWays)}
		b.SetScratch(st)
	}
	return st
}

// batchPlanIDCap bounds the planner-id map: when a context has served
// this many distinct planners the ids (and with them every cached
// entry) reset — a rare wholesale flush that keeps long-lived workers'
// memory bounded without per-switch invalidation.
const batchPlanIDCap = 512

// batchStateFor returns b's kernel scratch bound to pl. Each planner
// the context serves gets a stable id that keys its cache entries, so
// switching planners (a new cell) never invalidates anything: a grid
// sweep returns to each cell's pooled planner — and a λ sweep to each
// rate — with the previous batches' plans still resident.
func batchStateFor(b *sim.BatchContext, pl *Planner) *batchState {
	st := batchScratch(b)
	if st.pl != pl {
		st.pl = pl
		id, ok := st.ids[pl]
		if !ok {
			if st.ids == nil {
				st.ids = make(map[*Planner]uint64, 64)
			} else if len(st.ids) >= batchPlanIDCap {
				clear(st.ids)
				clear(st.ents)
				st.nextID = 0
			}
			st.nextID++ // ids start at 1: zeroed entries never match
			id = st.nextID
			st.ids[pl] = id
		}
		st.plID = id
	}
	return st
}

// batchSlot hashes a (rc, rd, λ, rf) state to its cache set — same mix
// as planKey.slot, wider modulus.
func batchSlot(rc, rd, lam uint64, rf int) uint64 {
	h := rc*0x9e3779b97f4a7c15 ^ rd*0xbf58476d1ce4e5b9 ^ lam*0x94d049bb133111eb ^ uint64(rf)
	h ^= h >> 29
	h *= 0xff51afd7ed558ccd
	return (h >> 33) & (batchPlanSets - 1)
}

// plan is the batch-side Planner consultation: one set probe per
// planning equivalence class, delegating to Planner.compute on a miss.
// It returns the resolved speedCosts entry (nil iff bad) alongside the
// interval lengths, so callers never re-resolve the operating point.
// Way 0 holds proven-reused entries (a way-1 hit promotes by swap), way
// 1 takes fresh insertions, so the repeat path stays one compare. Hits
// and misses accrue
// to the bound planner's counters, so PlannerCacheStats (and the
// telemetry ledger built on it) keeps reporting the combined
// scalar+batch totals.
func (st *batchState) plan(rc, rd, lam float64, rf int) (sc *speedCosts, itv, subLen float64, bad bool) {
	rcb, rdb, lb := math.Float64bits(rc), math.Float64bits(rd), math.Float64bits(lam)
	rfID := uint64(uint32(rf))<<32 | st.plID
	base := batchSlot(rcb, rdb, lb, rf) * batchPlanWays
	ent := &st.ents[base]
	if ent.rc == rcb && ent.rd == rdb && ent.lam == lb && ent.rfID == rfID {
		st.pl.hits++
		return st.entryPlan(ent)
	}
	alt := &st.ents[base+1]
	if alt.rc == rcb && alt.rd == rdb && alt.lam == lb && alt.rfID == rfID {
		*ent, *alt = *alt, *ent // promote the hit to MRU
		st.pl.hits++
		return st.entryPlan(ent)
	}
	st.pl.misses++
	p := st.pl.compute(rc, rd, lam, rf)
	idx := int32(badConfigIdx)
	if !p.BadConfig {
		idx = st.costIdx(p.Point)
		sc = &st.costs[idx]
	}
	// Insert into an empty way 0 first (a valid entry's rfID is never 0:
	// planner ids start at 1), otherwise overwrite way 1 — the LRU way,
	// since hits promote to way 0 by swap. Never displacing way 0 on a
	// miss is what lets a set retain two states that each recur only
	// once per table run (the steady-state re-run pattern) instead of
	// the last-inserted one evicting the other forever.
	if ent.rfID == 0 {
		alt = ent
	}
	alt.rc, alt.rd, alt.lam, alt.rfID = rcb, rdb, lb, rfID
	alt.itv, alt.sub, alt.ptIdx = p.Interval, p.SubLen, idx
	return sc, p.Interval, p.SubLen, p.BadConfig
}

// entryPlan resolves a hit entry's plan tuple.
func (st *batchState) entryPlan(ent *batchPlanEntry) (sc *speedCosts, itv, subLen float64, bad bool) {
	if ent.ptIdx == badConfigIdx {
		return nil, ent.itv, ent.sub, true
	}
	return &st.costs[ent.ptIdx], ent.itv, ent.sub, false
}

// costIdx resolves the speedCosts index of pt, (re)built per batch from
// the model's point list.
func (st *batchState) costIdx(pt cpu.OperatingPoint) int32 {
	for i := range st.costs {
		if st.costs[i].pt == pt {
			return int32(i)
		}
	}
	panic(fmt.Sprintf("core: operating point %+v missing from batch cost table", pt))
}

// buildCosts fills the per-point cost table from the model and cost
// parameters, reusing the backing array.
func buildSpeedCosts(dst []speedCosts, model *cpu.Model, costs checkpoint.Costs) []speedCosts {
	dst = dst[:0]
	for _, pt := range model.Points() {
		f := pt.Freq
		dst = append(dst, speedCosts{
			pt:  pt,
			epc: pt.EnergyPerCycle(),
			wall: [3]float64{
				checkpoint.SCP:  costs.AtSpeed(checkpoint.SCP, f),
				checkpoint.CCP:  costs.AtSpeed(checkpoint.CCP, f),
				checkpoint.CSCP: costs.AtSpeed(checkpoint.CSCP, f),
			},
			rollback: costs.Rollback / f,
		})
	}
	return dst
}

// batchable reports whether the parameters are inside the kernel
// envelope: the ideal-model warm path, where the only randomness a
// repetition consumes is its Poisson fault arrivals. Tracing wants
// per-event timelines, custom fault processes draw through their own
// code paths, and imperfect fault tolerance consumes extra randomness
// and store state — all of those take the scalar reference path, as do
// tiered-store runs (bounded retention changes rollback targets).
func batchable(p sim.Params) bool {
	return p.Trace == nil && p.FaultProcess == nil && p.Store == nil &&
		(p.Imperfect == nil || p.Imperfect.IsIdeal())
}

// arrivalHint estimates how many fault arrivals one repetition consumes
// — λ times the fault-free useful execution time at the planned
// frequency, plus slack for re-executed work — to size the
// pre-materialised queue near the mean per-repetition fault count.
// Over-drawing wastes exponentials on every repetition; under-drawing
// costs only the tail repetitions one small bulk refill, so the hint
// deliberately sits close to the mean rather than padding for the
// worst case.
func arrivalHint(lambda, cycles, freq float64) int {
	if lambda == 0 {
		return 0
	}
	h := int(lambda*(cycles/freq)*1.2) + 3
	if h > 64 {
		h = 64
	}
	return h
}

// Both scheme families provide batch kernels.
var (
	_ sim.BatchScheme = (*FixedCSCP)(nil)
	_ sim.BatchScheme = (*Adaptive)(nil)
)

// RunBatch implements sim.BatchScheme: the fixed-interval, fixed-speed
// kernel. One operating point, one interval length, m = 1 everywhere —
// the flattened equivalent of run() over the engine's m==1 fast path.
func (s *FixedCSCP) RunBatch(rctx *sim.RunContext, b *sim.BatchContext, p sim.Params, seeds []uint64) bool {
	if !batchable(p) {
		return false
	}
	n := len(seeds)
	b.Grow(n)
	model := p.CPUModel()
	pt, err := model.AtFreq(s.Freq)
	if err != nil {
		// Scalar path: Finish(false, FailBadConfig) on a fresh engine —
		// nothing metered, nothing drawn that the Result observes.
		for i := 0; i < n; i++ {
			b.Completed[i] = false
			b.Energy[i], b.Time[i], b.Faults[i], b.Switches[i] = 0, 0, 0, 0
		}
		return true
	}
	f := pt.Freq
	epc := pt.EnergyPerCycle()
	itv := s.interval(p, f)
	wallCSCP := p.Costs.AtSpeed(checkpoint.CSCP, f)
	wallRB := p.Costs.Rollback / f
	repl := float64(p.ReplicaCount())
	// Per-charge energy increments are products of per-rep constants —
	// computed once here, bit-identical to evaluating them at each
	// charge site (same factors, same order).
	eItv := (f * itv * repl) * epc
	eCSCP := (f * wallCSCP * repl) * epc
	eRB := (f * wallRB * repl) * epc
	D := p.Task.Deadline
	N := p.Task.Cycles
	lam := p.Lambda
	budget := p.MaxIntervalBudget()
	hint := arrivalHint(lam, N, f)
	src, arr := b.Source(), b.Arrivals()
	st := batchScratch(b)
	b.States.Reseed(seeds)

	// Shared fault-free prefix (see the adaptive kernel for the full
	// rationale): with one speed and one interval length every
	// repetition follows the same deterministic trajectory until its
	// first fault arrival. Walk it once with the live loop's exact
	// operation sequence, snapshotting (t, energy, rc, x) at each
	// interval top; a repetition jumps to the interval its first
	// arrival lands in, and a repetition whose first arrival falls
	// after the end of execution is the shared trajectory verbatim.
	pxT, pxE, pxRC, pxX := st.pxT[:0], st.pxE[:0], st.pxRC[:0], st.pxX[:0]
	termValid, termCompleted := false, false
	var termT, termE, xTotal float64
	{
		var t, x, energy float64
		rc := N
		broke := false
		for k := 0; k < budget; k++ {
			pxT = append(pxT, t)
			pxE = append(pxE, energy)
			pxRC = append(pxRC, rc)
			pxX = append(pxX, x)
			rd := D - t
			rcf := rc / f
			if rcf > rd {
				termValid, termT, termE = true, t, energy
				broke = true
				break // infeasible, completed stays false
			}
			cur := minPos(itv, rcf)
			if cur <= 0 {
				broke = true
				break // guard truncation: table ends, no terminal
			}
			eCur := eItv
			if cur != itv {
				eCur = (f * cur * repl) * epc
			}
			energy += eCur
			t += cur
			x += cur
			energy += eCSCP
			t += wallCSCP
			rc -= cur * f
			if rc <= sim.EpsWork {
				termValid, termCompleted, termT, termE = true, t <= D, t, energy
				broke = true
				break
			}
		}
		if !broke {
			// Interval budget exhausted without completing.
			termValid, termT, termE = true, t, energy
		}
		xTotal = x
	}
	st.pxT, st.pxE, st.pxRC, st.pxX = pxT, pxE, pxRC, pxX
	last := len(pxX) - 1

	for i := 0; i < n; i++ {
		b.States.Load(src, i)
		// Engine.Reset's process switch: only a strictly positive λ gets
		// a fault process; anything else (zero, or unvalidated junk)
		// never fires and draws nothing. The zero-rate sentinel keeps
		// the span walks branch-free.
		times := infTimes
		if lam > 0 {
			arr.Reset(lam, src, hint)
			times = arr.Times()
		}
		pos := 0
		next := times[0]
		if termValid && next >= xTotal {
			b.Completed[i] = termCompleted
			b.Energy[i] = termE
			b.Time[i] = termT
			b.Faults[i], b.Switches[i] = 0, 0
			continue
		}
		// Largest snapshot index with x[j] <= next — the interval the
		// first arrival lands in (span consumption is strict next < end).
		it0 := 0
		if last > 0 {
			lo, hi := 0, last
			for lo < hi {
				mid := int(uint(lo+hi+1) >> 1)
				if pxX[mid] <= next {
					lo = mid
				} else {
					hi = mid - 1
				}
			}
			it0 = lo
		}
		t, energy, rc, x := pxT[it0], pxE[it0], pxRC[it0], pxX[it0]
		faults := 0
		completed := false
		for k := it0; k < budget; k++ {
			rd := D - t
			rcf := rc / f
			if rcf > rd {
				break // infeasible
			}
			cur := minPos(itv, rcf)
			if cur <= 0 {
				panic(fmt.Sprintf("sim: non-positive interval %v", cur))
			}
			eCur := eItv
			if cur != itv {
				eCur = (f * cur * repl) * epc
			}
			// ExecSpan(cur): consume every arrival inside the span — a
			// straight-line walk over the pre-materialised times, with
			// the pending arrival held in a register so the common
			// fault-free span costs one compare, no load.
			hit := false
			end := x + cur
			if next < end {
				if times[len(times)-1] < end {
					times = arr.EnsureBeyond(end)
				}
				p0 := pos
				for times[pos] < end {
					pos++
				}
				faults += pos - p0
				next = times[pos]
				hit = true
			}
			energy += eCur
			t += cur
			x = end
			// Closing CSCP.
			energy += eCSCP
			t += wallCSCP
			if !hit {
				rc -= cur * f
			} else {
				// Detection at the CSCP: rollback, nothing kept.
				energy += eRB
				t += wallRB
			}
			if rc <= sim.EpsWork {
				completed = t <= D
				break
			}
		}
		b.Completed[i] = completed
		b.Energy[i] = energy
		b.Time[i] = t
		b.Faults[i] = float64(faults)
		b.Switches[i] = 0 // one speed throughout: the meter never counts a switch
	}
	return true
}

// RunBatch implements sim.BatchScheme: the adaptive kernel — planned
// intervals, optional sub-checkpoints, optional DVS, online λ
// estimation and the eager-DVS ablation — over the batch plan cache.
func (s *Adaptive) RunBatch(rctx *sim.RunContext, b *sim.BatchContext, p sim.Params, seeds []uint64) bool {
	return s.RunBatchArrival(rctx, b, p, seeds, p.Lambda)
}

// RunBatchArrival is RunBatch with the fault-arrival rate decoupled
// from the planning rate p.Lambda — the wrong-belief harness shape of
// the λ-knowledge ablation, whose scalar form runs a plain Poisson
// process at the grid's true rate while the scheme plans with a scaled
// belief. The arrival times are bit-identical to that process's (the
// queue draws the same exponentials in the same order), so the
// experiment wrapper batches those cells by stripping its FaultProcess
// and passing the true rate here.
func (s *Adaptive) RunBatchArrival(rctx *sim.RunContext, b *sim.BatchContext, p sim.Params, seeds []uint64, arrival float64) bool {
	if !batchable(p) {
		return false
	}
	n := len(seeds)
	b.Grow(n)
	pl := s.plannerFor(rctx, p)
	st := batchStateFor(b, pl)
	model := p.CPUModel()
	st.costs = buildSpeedCosts(st.costs, model, p.Costs)

	D := p.Task.Deadline
	N := p.Task.Cycles
	k0 := p.Task.FaultBudget
	repl := float64(p.ReplicaCount())
	budget := p.MaxIntervalBudget()
	useSub := s.UseSub
	subCCP := s.Sub == checkpoint.CCP
	src, arr := b.Source(), b.Arrivals()
	b.States.Reseed(seeds)

	// Planning rate: the given λ, or the online posterior mean when
	// estimation is enabled — λ̂ = (1+detections)/(pseudo+exposure),
	// which at zero detections and zero exposure is exactly 1/pseudo
	// (x + 0.0 is the identity on positive doubles). The eager-DVS
	// ablation replans before every interval; both were scalar-only
	// before the envelope extension.
	estimate := s.EstimateLambdaPrior > 0
	eager := s.DVS && s.EagerSpeedReeval
	var pseudo float64
	lam0 := p.Lambda
	if estimate {
		pseudo = math.Min(1/s.EstimateLambdaPrior, D)
		lam0 = 1 / pseudo
	}

	// The initial plan (rc = N, rd = D, full fault budget) is the same
	// for every repetition of the cell — hoist it out of the rep loop.
	sc0, itv0, sub0, bad0 := st.plan(N, D, lam0, k0)
	if bad0 {
		for i := 0; i < n; i++ {
			b.Completed[i] = false
			b.Energy[i], b.Time[i], b.Faults[i], b.Switches[i] = 0, 0, 0, 0
		}
		return true
	}
	hint := arrivalHint(arrival, N, sc0.pt.Freq)

	// Shared fault-free prefix: until its first fault arrival, every
	// repetition follows the same deterministic trajectory under the
	// initial plan (no replans, no speed switches, no randomness —
	// online estimation only moves λ̂ at detections, so it shares too).
	// Walk it once with the exact per-interval operation sequence the
	// live loop performs, snapshotting (t, energy, rc, x) at each
	// interval top; a repetition then jumps straight to the interval
	// its first arrival lands in. The snapshots come from the same
	// float operations in the same order, so the jump is bit-exact.
	// Eager-DVS replans every interval, so its prefix would need the
	// whole evolving plan state snapshotted — those cells skip the
	// prefix and run every repetition live.
	e0pc := sc0.pt.EnergyPerCycle()
	f0 := sc0.pt.Freq
	e0SCP := (f0 * sc0.wall[checkpoint.SCP] * repl) * e0pc
	e0CCP := (f0 * sc0.wall[checkpoint.CCP] * repl) * e0pc
	e0CSCP := (f0 * sc0.wall[checkpoint.CSCP] * repl) * e0pc
	e0RB := (f0 * sc0.rollback * repl) * e0pc
	// Full-interval invariants under the initial plan: a non-tail
	// interval (cur == itv) always splits into the same m spans of the
	// same length with the same energy increments — identical inputs,
	// identical doubles — so the Ceil/divide/multiply chain runs once
	// per plan instead of once per interval.
	m0 := 1
	if useSub && sub0 > 0 {
		m0 = int(math.Ceil(itv0/sub0 - 1e-9))
		if m0 < 1 {
			m0 = 1
		}
	}
	span0 := itv0 / float64(m0)
	eSp0 := (f0 * span0 * repl) * e0pc
	eItv0 := (f0 * itv0 * repl) * e0pc

	usePrefix := !eager
	pxT, pxE, pxRC, pxX := st.pxT[:0], st.pxE[:0], st.pxRC[:0], st.pxX[:0]
	// Terminal state of the never-faulting trajectory. Invalid only when
	// the walk stops at the live loop's non-positive-interval guard; the
	// affected repetitions then resume from the last snapshot so the
	// guard fires (or not) exactly where the scalar path would panic.
	termValid, termCompleted := false, false
	var termT, termE, xTotal float64
	if usePrefix {
		var t, x, energy float64
		rc := N
		broke := false
		for it := 0; it < budget; it++ {
			pxT = append(pxT, t)
			pxE = append(pxE, energy)
			pxRC = append(pxRC, rc)
			pxX = append(pxX, x)
			rd := D - t
			rcf := rc / f0
			if rcf > rd {
				termValid, termT, termE = true, t, energy
				broke = true
				break // infeasible, completed stays false
			}
			cur := minPos(itv0, rcf)
			if cur <= 0 {
				broke = true
				break // guard truncation: table ends, no terminal
			}
			var m int
			var span, eSp, eItv float64
			if cur == itv0 {
				m, span, eSp, eItv = m0, span0, eSp0, eItv0
			} else {
				m = 1
				if useSub && sub0 > 0 {
					m = int(math.Ceil(cur/sub0 - 1e-9))
					if m < 1 {
						m = 1
					}
				}
				span = cur / float64(m)
				eSp = (f0 * span * repl) * e0pc
				eItv = (f0 * cur * repl) * e0pc
			}
			if m == 1 {
				energy += eItv
				t += cur
				x += cur
				energy += e0CSCP
				t += sc0.wall[checkpoint.CSCP]
			} else if !subCCP {
				for j := 0; j < m; j++ {
					energy += eSp
					t += span
					x += span
					if j < m-1 {
						energy += e0SCP
						t += sc0.wall[checkpoint.SCP]
					}
				}
				energy += e0CSCP
				t += sc0.wall[checkpoint.CSCP]
			} else {
				for j := 0; j < m; j++ {
					energy += eSp
					t += span
					x += span
					if j == m-1 {
						energy += e0CSCP
						t += sc0.wall[checkpoint.CSCP]
					} else {
						energy += e0CCP
						t += sc0.wall[checkpoint.CCP]
					}
				}
			}
			rc -= cur * f0
			if rc <= sim.EpsWork {
				termValid, termCompleted, termT, termE = true, t <= D, t, energy
				broke = true
				break
			}
		}
		if !broke {
			// Interval budget exhausted without completing.
			termValid, termT, termE = true, t, energy
		}
		xTotal = x
	}
	st.pxT, st.pxE, st.pxRC, st.pxX = pxT, pxE, pxRC, pxX
	last := len(pxX) - 1

	for i := 0; i < n; i++ {
		b.States.Load(src, i)
		times := infTimes
		if arrival > 0 {
			arr.Reset(arrival, src, hint)
			times = arr.Times()
		}
		pos := 0
		next := times[0]
		var t, energy, x float64
		rc := N
		it0 := 0
		if usePrefix {
			if termValid && next >= xTotal {
				// First fault (if any) arrives after execution ends: the
				// repetition is the shared trajectory, verbatim. Arrivals
				// past the end are never consumed by the scalar loop either.
				b.Completed[i] = termCompleted
				b.Energy[i] = termE
				b.Time[i] = termT
				b.Faults[i], b.Switches[i] = 0, 0
				continue
			}
			// Jump to the interval containing the first arrival: the largest
			// snapshot index j with x[j] <= next (span consumption uses a
			// strict next < end, so a boundary arrival belongs to the next
			// interval). A guard-truncated table routes past-the-end
			// repetitions to the last snapshot, where the live loop stops at
			// the same state the scalar path would.
			if last > 0 {
				lo, hi := 0, last
				for lo < hi {
					mid := int(uint(lo+hi+1) >> 1)
					if pxX[mid] <= next {
						lo = mid
					} else {
						hi = mid - 1
					}
				}
				it0 = lo
			}
			t, energy, rc, x = pxT[it0], pxE[it0], pxRC[it0], pxX[it0]
		}
		var faults, switches, det int
		rf := k0
		sc := sc0
		itv, subLen := itv0, sub0
		// Lazy meter-state emulation: a switch is counted when a
		// segment is charged at a different point than the last one
		// (never on the first segment) — Meter.segmentSlow's rule. The
		// point is constant within an interval, so the check runs once
		// per interval, and it compares speedCosts pointers: plan always
		// resolves a point to its first matching st.costs slot, so
		// within a batch pointer identity coincides with point equality.
		// A jumped-over prefix interval has already charged segments at
		// the initial point (lastSc nil means no segment charged yet).
		var lastSc *speedCosts
		epc := 0.0
		// Per-charge energy increments at the current operating point —
		// products of values constant between speed switches, refreshed
		// alongside epc. Each equals the inline expression it replaces
		// bit-for-bit (same factors, same association order). The mF
		// family is the full-interval invariants at the live plan,
		// refreshed when the plan or the point changes (reconst).
		var eSCP, eCCP, eCSCP, eRB float64
		mF := m0
		spanF, eSpF, eItvF := span0, eSp0, eItv0
		reconst := false
		if it0 > 0 {
			lastSc = sc0
			epc = e0pc
			eSCP, eCCP, eCSCP, eRB = e0SCP, e0CCP, e0CSCP, e0RB
		}
		completed := false
		f := sc.pt.Freq

		for it := it0; it < budget; it++ {
			rd := D - t
			if eager {
				// The idealised governor: re-take the speed decision and
				// the interval plan before every interval, bidirectionally.
				// A BadConfig keeps the previous plan, like the scalar
				// loop ignoring replan's mid-run result.
				lamE := lam0
				if estimate {
					lamE = (1 + float64(det)) / (pseudo + x)
				}
				if pSC, pItv, pSub, pBad := st.plan(rc, rd, lamE, rf); !pBad {
					if pSC != sc || pItv != itv || pSub != subLen {
						sc = pSC
						f = sc.pt.Freq
						itv, subLen = pItv, pSub
						reconst = true
					}
				}
			}
			rcf := rc / f
			if rcf > rd {
				break // infeasible
			}
			cur := minPos(itv, rcf)
			if cur <= 0 {
				panic(fmt.Sprintf("sim: non-positive interval %v", cur))
			}
			if sc != lastSc {
				if lastSc != nil {
					switches++
				}
				lastSc = sc
				epc = sc.pt.EnergyPerCycle()
				eSCP = (f * sc.wall[checkpoint.SCP] * repl) * epc
				eCCP = (f * sc.wall[checkpoint.CCP] * repl) * epc
				eCSCP = (f * sc.wall[checkpoint.CSCP] * repl) * epc
				eRB = (f * sc.rollback * repl) * epc
				reconst = true
			}
			if reconst {
				reconst = false
				mF = 1
				if useSub && subLen > 0 {
					mF = int(math.Ceil(itv/subLen - 1e-9))
					if mF < 1 {
						mF = 1
					}
				}
				spanF = itv / float64(mF)
				eSpF = (f * spanF * repl) * epc
				eItvF = (f * itv * repl) * epc
			}
			var m int
			var span, eSp, eItv float64
			if cur == itv {
				m, span, eSp, eItv = mF, spanF, eSpF, eItvF
			} else {
				m = 1
				if useSub && subLen > 0 {
					m = int(math.Ceil(cur/subLen - 1e-9))
					if m < 1 {
						m = 1
					}
				}
				span = cur / float64(m)
				eSp = (f * span * repl) * epc
				eItv = (f * cur * repl) * epc
			}

			kept := 0.0
			detected := false
			if m == 1 {
				// Single-span interval: one execution span, the closing
				// CSCP, rollback to the interval-leading state on a fault.
				// The pending arrival stays in a register across spans, so
				// the common fault-free span costs one compare, no load.
				hit := false
				end := x + cur
				if next < end {
					if times[len(times)-1] < end {
						times = arr.EnsureBeyond(end)
					}
					p0 := pos
					for times[pos] < end {
						pos++
					}
					faults += pos - p0
					next = times[pos]
					hit = true
				}
				energy += eItv
				t += cur
				x = end
				energy += eCSCP
				t += sc.wall[checkpoint.CSCP]
				if !hit {
					kept = cur * f
				} else {
					energy += eRB
					t += sc.rollback
					detected = true
				}
			} else if !subCCP {
				// SCP flavour: detection deferred to the closing CSCP,
				// rollback to the newest store before the earliest fault.
				firstOffset := -1.0
				for j := 0; j < m; j++ {
					end := x + span
					if next < end {
						if times[len(times)-1] < end {
							times = arr.EnsureBeyond(end)
						}
						if firstOffset < 0 {
							// next still holds the span's earliest arrival.
							firstOffset = float64(j)*span + (next - x)
						}
						p0 := pos
						for times[pos] < end {
							pos++
						}
						faults += pos - p0
						next = times[pos]
					}
					energy += eSp
					t += span
					x = end
					if j < m-1 {
						energy += eSCP
						t += sc.wall[checkpoint.SCP]
					}
				}
				energy += eCSCP
				t += sc.wall[checkpoint.CSCP]
				if firstOffset < 0 {
					kept = cur * f
				} else {
					goodBoundary := math.Floor(firstOffset / span)
					kept = goodBoundary * span * f
					energy += eRB
					t += sc.rollback
					detected = true
				}
			} else {
				// CCP flavour: detection at the next comparison aborts the
				// interval — unexecuted spans consume no arrivals.
				for j := 0; j < m; j++ {
					hit := false
					end := x + span
					if next < end {
						if times[len(times)-1] < end {
							times = arr.EnsureBeyond(end)
						}
						p0 := pos
						for times[pos] < end {
							pos++
						}
						faults += pos - p0
						next = times[pos]
						hit = true
					}
					energy += eSp
					t += span
					x = end
					eKind, wKind := eCCP, sc.wall[checkpoint.CCP]
					if j == m-1 {
						eKind, wKind = eCSCP, sc.wall[checkpoint.CSCP]
					}
					energy += eKind
					t += wKind
					if hit {
						energy += eRB
						t += sc.rollback
						detected = true
						break
					}
				}
				if !detected {
					kept = cur * f
				}
			}

			rc -= kept
			if detected {
				det++
				if rf > 0 {
					rf--
				}
				// Fig. 6 lines 15–17: re-take the speed decision and the
				// interval plan. A BadConfig here keeps the previous plan,
				// exactly as the scalar loop ignores replan's result
				// mid-run (fixed-speed badness is static and already
				// caught by the initial plan). The online estimator feeds
				// its posterior mean over the useful-execution exposure x.
				lamR := lam0
				if estimate {
					lamR = (1 + float64(det)) / (pseudo + x)
				}
				if pSC, pItv, pSub, pBad := st.plan(rc, D-t, lamR, rf); !pBad {
					if pSC != sc || pItv != itv || pSub != subLen {
						sc = pSC
						f = sc.pt.Freq
						itv, subLen = pItv, pSub
						reconst = true
					}
				}
			}
			if rc <= sim.EpsWork {
				completed = t <= D
				break
			}
		}
		b.Completed[i] = completed
		b.Energy[i] = energy
		b.Time[i] = t
		b.Faults[i] = float64(faults)
		b.Switches[i] = float64(switches)
	}
	return true
}
