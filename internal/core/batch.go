// Batched structure-of-arrays execution kernels: the warm Monte-Carlo
// path flattened. A batch is K repetitions of one cell; the kernel runs
// them rep-major through a loop that mirrors the scalar
// Engine/RunInterval machinery expression for expression — same float
// operations, same order — but with every layer of indirection removed:
// fault arrivals pre-materialised in bulk (fault.Arrivals over
// rng.ExpBatch) instead of one virtual draw per fault, energy metering
// inlined to the two multiplies Meter.Segment performs, per-speed wall
// costs resolved once per batch, and the shared fault-free prefix of
// the batch walked once and replayed by snapshot jump.
//
// The prefix-jump is the batch-shape win: until its first fault arrival
// a repetition is deterministic — no randomness, no replan, no speed
// switch — so every repetition of a cell follows one shared trajectory
// out of the gate. The kernel walks that trajectory once per batch with
// the live loop's exact operation sequence, snapshotting (t, energy,
// rc, x) at each interval top; a repetition binary-searches the
// interval its first arrival lands in and resumes there, and a
// repetition whose first arrival falls after execution ends takes the
// shared terminal state in O(1) (at the paper's low-λ cells that is
// most of the batch).
//
// Post-fault replans, by contrast, key on continuous (rc, rd) states:
// a fault's surviving work is quantised to span boundaries, but t (and
// so rd) accumulates a path-dependent mix of span, checkpoint and
// rollback durations, and the reachable set grows combinatorially with
// fault depth. Measured at the paper's fault-dense cells, ~4 in 5
// replans are first sightings no matter the cache size — so the batch
// plan cache is sized at 4096 slots to catch the recurring fifth (and
// the hot initial plan) cheaply, packs an entry into one cache line,
// and otherwise leans on making the miss path (Planner.compute) fast
// rather than on hit rate.
//
// The scalar path stays as the reference implementation; the
// batch/scalar equivalence property and fuzz tests pin byte-identical
// stats.Shard payloads between the two.
package core

import (
	"fmt"
	"math"

	"repro/internal/checkpoint"
	"repro/internal/cpu"
	"repro/internal/sim"
)

// batchPlanCacheSize is the batch plan cache's slot count (a power of
// two). Empirically the sweet spot for the paper's grids (512 and 16384
// both measured slower): at 48 bytes a slot the array is 192 KiB per
// worker, reused across cells via epoch tagging (no per-cell clearing).
const batchPlanCacheSize = 4096

// batchPlanEntry is one direct-mapped slot, packed into a single cache
// line (48 bytes): the exact (rc, rd) state bits, the fault budget and
// cache epoch sharing a word, the planned interval lengths, and the
// operating point as an index into the batch's speedCosts table
// (badConfigIdx marks a BadConfig plan). The planning λ is not part of
// the key — it is constant per batch, and rebinding the cache to a new
// (planner, λ) pair bumps the epoch, invalidating every entry in O(1).
type batchPlanEntry struct {
	rc, rd  uint64
	rfEpoch uint64
	itv     float64
	sub     float64
	ptIdx   int32
	_       int32
}

// badConfigIdx is the ptIdx sentinel for a BadConfig plan.
const badConfigIdx = -1

// batchState is the per-BatchContext scratch of the adaptive kernel:
// the epoch-tagged plan cache bound to the cell's (Planner, λ) pair,
// plus the per-operating-point cost table. Rebinding to a new planner
// or planning rate (a new cell, a new sweep point) bumps the epoch.
type batchState struct {
	pl    *Planner
	lam   uint64
	epoch uint32
	ents  []batchPlanEntry
	costs []speedCosts

	// Fault-free prefix trajectory scratch (see buildPrefix): snapshots
	// of (t, energy, rc, x) at the top of each interval of the shared
	// no-fault trajectory, reused across batches.
	pxT, pxE, pxRC, pxX []float64
}

// speedCosts caches the wall-clock overhead durations and energy per
// cycle of one operating point — the values Engine.refreshSpeedCosts
// derives on every speed switch, computed once per batch here. The
// expressions match AtSpeed/EnergyPerCycle exactly.
type speedCosts struct {
	pt       cpu.OperatingPoint
	epc      float64
	wall     [3]float64
	rollback float64
}

// batchScratch returns b's kernel scratch, allocating it on first use.
// The fixed kernel uses it for the prefix-trajectory arrays alone; the
// adaptive kernel binds it to a planner via batchStateFor.
func batchScratch(b *sim.BatchContext) *batchState {
	st, ok := b.Scratch().(*batchState)
	if !ok {
		st = &batchState{ents: make([]batchPlanEntry, batchPlanCacheSize)}
		b.SetScratch(st)
	}
	return st
}

// batchStateFor returns b's kernel scratch bound to (pl, lam), bumping
// the epoch when either changed (new cell, new configuration, new sweep
// point — the plan cache must not leak entries across planners, and a
// planner serves a whole λ sweep, so λ must invalidate too).
func batchStateFor(b *sim.BatchContext, pl *Planner, lam float64) *batchState {
	st := batchScratch(b)
	if lb := math.Float64bits(lam); st.pl != pl || st.lam != lb {
		st.pl, st.lam = pl, lb
		st.epoch++
	}
	return st
}

// batchSlot hashes a (rc, rd, rf) state to its batch-cache slot — same
// mix as planKey.slot minus the λ term, wider modulus.
func batchSlot(rc, rd uint64, rf int) uint64 {
	h := rc*0x9e3779b97f4a7c15 ^ rd*0xbf58476d1ce4e5b9 ^ uint64(rf)
	h ^= h >> 29
	h *= 0xff51afd7ed558ccd
	return (h >> 33) & (batchPlanCacheSize - 1)
}

// plan is the batch-side Planner consultation: one lookup per planning
// equivalence class, delegating to Planner.compute on a miss. It
// returns the resolved speedCosts entry (nil iff bad) alongside the
// interval lengths, so callers never re-resolve the operating point.
// Hits and misses accrue to the bound planner's counters, so
// PlannerCacheStats (and the telemetry ledger built on it) keeps
// reporting the combined scalar+batch totals.
func (st *batchState) plan(rc, rd, lam float64, rf int) (sc *speedCosts, itv, subLen float64, bad bool) {
	rcb, rdb := math.Float64bits(rc), math.Float64bits(rd)
	rfEpoch := uint64(uint32(rf))<<32 | uint64(st.epoch)
	ent := &st.ents[batchSlot(rcb, rdb, rf)]
	if ent.rc == rcb && ent.rd == rdb && ent.rfEpoch == rfEpoch {
		st.pl.hits++
		if ent.ptIdx == badConfigIdx {
			return nil, ent.itv, ent.sub, true
		}
		return &st.costs[ent.ptIdx], ent.itv, ent.sub, false
	}
	st.pl.misses++
	p := st.pl.compute(rc, rd, lam, rf)
	idx := int32(badConfigIdx)
	if !p.BadConfig {
		idx = st.costIdx(p.Point)
		sc = &st.costs[idx]
	}
	ent.rc, ent.rd, ent.rfEpoch = rcb, rdb, rfEpoch
	ent.itv, ent.sub, ent.ptIdx = p.Interval, p.SubLen, idx
	return sc, p.Interval, p.SubLen, p.BadConfig
}

// costIdx resolves the speedCosts index of pt, (re)built per batch from
// the model's point list.
func (st *batchState) costIdx(pt cpu.OperatingPoint) int32 {
	for i := range st.costs {
		if st.costs[i].pt == pt {
			return int32(i)
		}
	}
	panic(fmt.Sprintf("core: operating point %+v missing from batch cost table", pt))
}

// buildCosts fills the per-point cost table from the model and cost
// parameters, reusing the backing array.
func buildSpeedCosts(dst []speedCosts, model *cpu.Model, costs checkpoint.Costs) []speedCosts {
	dst = dst[:0]
	for _, pt := range model.Points() {
		f := pt.Freq
		dst = append(dst, speedCosts{
			pt:  pt,
			epc: pt.EnergyPerCycle(),
			wall: [3]float64{
				checkpoint.SCP:  costs.AtSpeed(checkpoint.SCP, f),
				checkpoint.CCP:  costs.AtSpeed(checkpoint.CCP, f),
				checkpoint.CSCP: costs.AtSpeed(checkpoint.CSCP, f),
			},
			rollback: costs.Rollback / f,
		})
	}
	return dst
}

// batchable reports whether the parameters are inside the kernel
// envelope: the ideal-model warm path, where the only randomness a
// repetition consumes is its Poisson fault arrivals. Tracing wants
// per-event timelines, custom fault processes draw through their own
// code paths, and imperfect fault tolerance consumes extra randomness
// and store state — all of those take the scalar reference path, as do
// tiered-store runs (bounded retention changes rollback targets).
func batchable(p sim.Params) bool {
	return p.Trace == nil && p.FaultProcess == nil && p.Store == nil &&
		(p.Imperfect == nil || p.Imperfect.IsIdeal())
}

// arrivalHint estimates how many fault arrivals one repetition consumes
// — λ times the fault-free useful execution time at the planned
// frequency, plus slack for re-executed work — to size the
// pre-materialised queue near the mean per-repetition fault count.
// Over-drawing wastes exponentials on every repetition; under-drawing
// costs only the tail repetitions one small bulk refill, so the hint
// deliberately sits close to the mean rather than padding for the
// worst case.
func arrivalHint(lambda, cycles, freq float64) int {
	if lambda == 0 {
		return 0
	}
	h := int(lambda*(cycles/freq)*1.2) + 3
	if h > 64 {
		h = 64
	}
	return h
}

// Both scheme families provide batch kernels.
var (
	_ sim.BatchScheme = (*FixedCSCP)(nil)
	_ sim.BatchScheme = (*Adaptive)(nil)
)

// RunBatch implements sim.BatchScheme: the fixed-interval, fixed-speed
// kernel. One operating point, one interval length, m = 1 everywhere —
// the flattened equivalent of run() over the engine's m==1 fast path.
func (s *FixedCSCP) RunBatch(rctx *sim.RunContext, b *sim.BatchContext, p sim.Params, seeds []uint64) bool {
	if !batchable(p) {
		return false
	}
	n := len(seeds)
	b.Grow(n)
	model := p.CPUModel()
	pt, err := model.AtFreq(s.Freq)
	if err != nil {
		// Scalar path: Finish(false, FailBadConfig) on a fresh engine —
		// nothing metered, nothing drawn that the Result observes.
		for i := 0; i < n; i++ {
			b.Completed[i] = false
			b.Energy[i], b.Time[i], b.Faults[i], b.Switches[i] = 0, 0, 0, 0
		}
		return true
	}
	f := pt.Freq
	epc := pt.EnergyPerCycle()
	itv := s.interval(p, f)
	wallCSCP := p.Costs.AtSpeed(checkpoint.CSCP, f)
	wallRB := p.Costs.Rollback / f
	repl := float64(p.ReplicaCount())
	// Per-charge energy increments are products of per-rep constants —
	// computed once here, bit-identical to evaluating them at each
	// charge site (same factors, same order).
	eItv := (f * itv * repl) * epc
	eCSCP := (f * wallCSCP * repl) * epc
	eRB := (f * wallRB * repl) * epc
	D := p.Task.Deadline
	N := p.Task.Cycles
	lam := p.Lambda
	budget := p.MaxIntervalBudget()
	hint := arrivalHint(lam, N, f)
	src, arr := b.Source(), b.Arrivals()
	st := batchScratch(b)

	// Shared fault-free prefix (see the adaptive kernel for the full
	// rationale): with one speed and one interval length every
	// repetition follows the same deterministic trajectory until its
	// first fault arrival. Walk it once with the live loop's exact
	// operation sequence, snapshotting (t, energy, rc, x) at each
	// interval top; a repetition jumps to the interval its first
	// arrival lands in, and a repetition whose first arrival falls
	// after the end of execution is the shared trajectory verbatim.
	pxT, pxE, pxRC, pxX := st.pxT[:0], st.pxE[:0], st.pxRC[:0], st.pxX[:0]
	termValid, termCompleted := false, false
	var termT, termE, xTotal float64
	{
		var t, x, energy float64
		rc := N
		broke := false
		for k := 0; k < budget; k++ {
			pxT = append(pxT, t)
			pxE = append(pxE, energy)
			pxRC = append(pxRC, rc)
			pxX = append(pxX, x)
			rd := D - t
			if rc/f > rd {
				termValid, termT, termE = true, t, energy
				broke = true
				break // infeasible, completed stays false
			}
			cur := minPos(itv, rc/f)
			if cur <= 0 {
				broke = true
				break // guard truncation: table ends, no terminal
			}
			eCur := eItv
			if cur != itv {
				eCur = (f * cur * repl) * epc
			}
			energy += eCur
			t += cur
			x += cur
			energy += eCSCP
			t += wallCSCP
			rc -= cur * f
			if rc <= sim.EpsWork {
				termValid, termCompleted, termT, termE = true, t <= D, t, energy
				broke = true
				break
			}
		}
		if !broke {
			// Interval budget exhausted without completing.
			termValid, termT, termE = true, t, energy
		}
		xTotal = x
	}
	st.pxT, st.pxE, st.pxRC, st.pxX = pxT, pxE, pxRC, pxX
	last := len(pxX) - 1

	for i := 0; i < n; i++ {
		src.Reseed(seeds[i])
		// Engine.Reset's process switch: only a strictly positive λ gets
		// a fault process; anything else (zero, or unvalidated junk)
		// never fires and draws nothing.
		next := math.Inf(1)
		if lam > 0 {
			arr.Reset(lam, src, hint)
			next = arr.Next()
		}
		if termValid && next >= xTotal {
			b.Completed[i] = termCompleted
			b.Energy[i] = termE
			b.Time[i] = termT
			b.Faults[i], b.Switches[i] = 0, 0
			continue
		}
		// Largest snapshot index with x[j] <= next — the interval the
		// first arrival lands in (span consumption is strict next < end).
		it0 := 0
		if last > 0 {
			lo, hi := 0, last
			for lo < hi {
				mid := int(uint(lo+hi+1) >> 1)
				if pxX[mid] <= next {
					lo = mid
				} else {
					hi = mid - 1
				}
			}
			it0 = lo
		}
		t, energy, rc, x := pxT[it0], pxE[it0], pxRC[it0], pxX[it0]
		faults := 0
		completed := false
		for k := it0; k < budget; k++ {
			rd := D - t
			if rc/f > rd {
				break // infeasible
			}
			cur := minPos(itv, rc/f)
			if cur <= 0 {
				panic(fmt.Sprintf("sim: non-positive interval %v", cur))
			}
			eCur := eItv
			if cur != itv {
				eCur = (f * cur * repl) * epc
			}
			// ExecSpan(cur): consume every arrival inside the span.
			first := -1.0
			end := x + cur
			for next < end {
				if first < 0 {
					first = next - x
				}
				faults++
				next = arr.Next()
			}
			energy += eCur
			t += cur
			x = end
			// Closing CSCP.
			energy += eCSCP
			t += wallCSCP
			if first < 0 {
				rc -= cur * f
			} else {
				// Detection at the CSCP: rollback, nothing kept.
				energy += eRB
				t += wallRB
			}
			if rc <= sim.EpsWork {
				completed = t <= D
				break
			}
		}
		b.Completed[i] = completed
		b.Energy[i] = energy
		b.Time[i] = t
		b.Faults[i] = float64(faults)
		b.Switches[i] = 0 // one speed throughout: the meter never counts a switch
	}
	return true
}

// RunBatch implements sim.BatchScheme: the adaptive kernel — planned
// intervals, optional sub-checkpoints, optional DVS — over the batch
// plan cache. Online λ estimation and the eager-DVS ablation replan on
// continuous per-repetition state (the useful-execution clock) and stay
// on the scalar path.
func (s *Adaptive) RunBatch(rctx *sim.RunContext, b *sim.BatchContext, p sim.Params, seeds []uint64) bool {
	if !batchable(p) || s.EstimateLambdaPrior > 0 || s.EagerSpeedReeval {
		return false
	}
	n := len(seeds)
	b.Grow(n)
	pl := s.plannerFor(rctx, p)
	lam := p.Lambda
	st := batchStateFor(b, pl, lam)
	model := p.CPUModel()
	st.costs = buildSpeedCosts(st.costs, model, p.Costs)

	D := p.Task.Deadline
	N := p.Task.Cycles
	k0 := p.Task.FaultBudget
	repl := float64(p.ReplicaCount())
	budget := p.MaxIntervalBudget()
	useSub := s.UseSub
	subCCP := s.Sub == checkpoint.CCP
	src, arr := b.Source(), b.Arrivals()

	// The initial plan (rc = N, rd = D, full fault budget) is the same
	// for every repetition of the cell — hoist it out of the rep loop.
	sc0, itv0, sub0, bad0 := st.plan(N, D, lam, k0)
	if bad0 {
		for i := 0; i < n; i++ {
			b.Completed[i] = false
			b.Energy[i], b.Time[i], b.Faults[i], b.Switches[i] = 0, 0, 0, 0
		}
		return true
	}
	hint := arrivalHint(lam, N, sc0.pt.Freq)

	// Shared fault-free prefix: until its first fault arrival, every
	// repetition follows the same deterministic trajectory under the
	// initial plan (no replans, no speed switches, no randomness).
	// Walk it once with the exact per-interval operation sequence the
	// live loop performs, snapshotting (t, energy, rc, x) at each
	// interval top; a repetition then jumps straight to the interval
	// its first arrival lands in. The snapshots come from the same
	// float operations in the same order, so the jump is bit-exact.
	e0pc := sc0.pt.EnergyPerCycle()
	f0 := sc0.pt.Freq
	e0SCP := (f0 * sc0.wall[checkpoint.SCP] * repl) * e0pc
	e0CCP := (f0 * sc0.wall[checkpoint.CCP] * repl) * e0pc
	e0CSCP := (f0 * sc0.wall[checkpoint.CSCP] * repl) * e0pc
	e0RB := (f0 * sc0.rollback * repl) * e0pc
	pxT, pxE, pxRC, pxX := st.pxT[:0], st.pxE[:0], st.pxRC[:0], st.pxX[:0]
	// Terminal state of the never-faulting trajectory. Invalid only when
	// the walk stops at the live loop's non-positive-interval guard; the
	// affected repetitions then resume from the last snapshot so the
	// guard fires (or not) exactly where the scalar path would panic.
	termValid, termCompleted := false, false
	var termT, termE, xTotal float64
	{
		var t, x, energy float64
		rc := N
		itv, subLen := itv0, sub0
		broke := false
		for it := 0; it < budget; it++ {
			pxT = append(pxT, t)
			pxE = append(pxE, energy)
			pxRC = append(pxRC, rc)
			pxX = append(pxX, x)
			rd := D - t
			if rc/f0 > rd {
				termValid, termT, termE = true, t, energy
				broke = true
				break // infeasible, completed stays false
			}
			cur := minPos(itv, rc/f0)
			if cur <= 0 {
				broke = true
				break // guard truncation: table ends, no terminal
			}
			m := 1
			if useSub && subLen > 0 {
				m = int(math.Ceil(cur/subLen - 1e-9))
				if m < 1 {
					m = 1
				}
			}
			if m == 1 {
				energy += (f0 * cur * repl) * e0pc
				t += cur
				x += cur
				energy += e0CSCP
				t += sc0.wall[checkpoint.CSCP]
			} else if !subCCP {
				span := cur / float64(m)
				eSp := (f0 * span * repl) * e0pc
				for j := 0; j < m; j++ {
					energy += eSp
					t += span
					x += span
					if j < m-1 {
						energy += e0SCP
						t += sc0.wall[checkpoint.SCP]
					}
				}
				energy += e0CSCP
				t += sc0.wall[checkpoint.CSCP]
			} else {
				span := cur / float64(m)
				eSp := (f0 * span * repl) * e0pc
				for j := 0; j < m; j++ {
					energy += eSp
					t += span
					x += span
					if j == m-1 {
						energy += e0CSCP
						t += sc0.wall[checkpoint.CSCP]
					} else {
						energy += e0CCP
						t += sc0.wall[checkpoint.CCP]
					}
				}
			}
			rc -= cur * f0
			if rc <= sim.EpsWork {
				termValid, termCompleted, termT, termE = true, t <= D, t, energy
				broke = true
				break
			}
		}
		if !broke {
			// Interval budget exhausted without completing.
			termValid, termT, termE = true, t, energy
		}
		xTotal = x
	}
	st.pxT, st.pxE, st.pxRC, st.pxX = pxT, pxE, pxRC, pxX
	last := len(pxX) - 1

	for i := 0; i < n; i++ {
		src.Reseed(seeds[i])
		next := math.Inf(1)
		if lam > 0 {
			arr.Reset(lam, src, hint)
			next = arr.Next()
		}
		if termValid && next >= xTotal {
			// First fault (if any) arrives after execution ends: the
			// repetition is the shared trajectory, verbatim. Arrivals
			// past the end are never consumed by the scalar loop either.
			b.Completed[i] = termCompleted
			b.Energy[i] = termE
			b.Time[i] = termT
			b.Faults[i], b.Switches[i] = 0, 0
			continue
		}
		// Jump to the interval containing the first arrival: the largest
		// snapshot index j with x[j] <= next (span consumption uses a
		// strict next < end, so a boundary arrival belongs to the next
		// interval). A guard-truncated table routes past-the-end
		// repetitions to the last snapshot, where the live loop stops at
		// the same state the scalar path would.
		it0 := 0
		if last > 0 {
			lo, hi := 0, last
			for lo < hi {
				mid := int(uint(lo+hi+1) >> 1)
				if pxX[mid] <= next {
					lo = mid
				} else {
					hi = mid - 1
				}
			}
			it0 = lo
		}
		t, energy, rc, x := pxT[it0], pxE[it0], pxRC[it0], pxX[it0]
		var faults, switches int
		rf := k0
		sc := sc0
		itv, subLen := itv0, sub0
		// Lazy meter-state emulation: a switch is counted when a
		// segment is charged at a different point than the last one
		// (never on the first segment) — Meter.segmentSlow's rule. The
		// point is constant within an interval, so the check runs once
		// per interval, and it compares speedCosts pointers: plan always
		// resolves a point to its first matching st.costs slot, so
		// within a batch pointer identity coincides with point equality.
		// A jumped-over prefix interval has already charged segments at
		// the initial point (lastSc nil means no segment charged yet).
		var lastSc *speedCosts
		epc := 0.0
		// Per-charge energy increments at the current operating point —
		// products of values constant between speed switches, refreshed
		// alongside epc. Each equals the inline expression it replaces
		// bit-for-bit (same factors, same association order).
		var eSCP, eCCP, eCSCP, eRB float64
		if it0 > 0 {
			lastSc = sc0
			epc = e0pc
			eSCP, eCCP, eCSCP, eRB = e0SCP, e0CCP, e0CSCP, e0RB
		}
		completed := false
		f := sc.pt.Freq

		for it := it0; it < budget; it++ {
			rd := D - t
			if rc/f > rd {
				break // infeasible
			}
			cur := minPos(itv, rc/f)
			if cur <= 0 {
				panic(fmt.Sprintf("sim: non-positive interval %v", cur))
			}
			m := 1
			if useSub && subLen > 0 {
				m = int(math.Ceil(cur/subLen - 1e-9))
				if m < 1 {
					m = 1
				}
			}
			if sc != lastSc {
				if lastSc != nil {
					switches++
				}
				lastSc = sc
				epc = sc.pt.EnergyPerCycle()
				eSCP = (f * sc.wall[checkpoint.SCP] * repl) * epc
				eCCP = (f * sc.wall[checkpoint.CCP] * repl) * epc
				eCSCP = (f * sc.wall[checkpoint.CSCP] * repl) * epc
				eRB = (f * sc.rollback * repl) * epc
			}

			kept := 0.0
			detected := false
			if m == 1 {
				// Single-span interval: one execution span, the closing
				// CSCP, rollback to the interval-leading state on a fault.
				first := -1.0
				end := x + cur
				for next < end {
					if first < 0 {
						first = next - x
					}
					faults++
					next = arr.Next()
				}
				energy += (f * cur * repl) * epc
				t += cur
				x = end
				energy += eCSCP
				t += sc.wall[checkpoint.CSCP]
				if first < 0 {
					kept = cur * f
				} else {
					energy += eRB
					t += sc.rollback
					detected = true
				}
			} else if !subCCP {
				// SCP flavour: detection deferred to the closing CSCP,
				// rollback to the newest store before the earliest fault.
				span := cur / float64(m)
				eSp := (f * span * repl) * epc
				firstOffset := -1.0
				for j := 0; j < m; j++ {
					first := -1.0
					end := x + span
					for next < end {
						if first < 0 {
							first = next - x
						}
						faults++
						next = arr.Next()
					}
					energy += eSp
					t += span
					x = end
					if first >= 0 && firstOffset < 0 {
						firstOffset = float64(j)*span + first
					}
					if j < m-1 {
						energy += eSCP
						t += sc.wall[checkpoint.SCP]
					}
				}
				energy += eCSCP
				t += sc.wall[checkpoint.CSCP]
				if firstOffset < 0 {
					kept = cur * f
				} else {
					goodBoundary := math.Floor(firstOffset / span)
					kept = goodBoundary * span * f
					energy += eRB
					t += sc.rollback
					detected = true
				}
			} else {
				// CCP flavour: detection at the next comparison aborts the
				// interval — unexecuted spans consume no arrivals.
				span := cur / float64(m)
				eSp := (f * span * repl) * epc
				for j := 0; j < m; j++ {
					first := -1.0
					end := x + span
					for next < end {
						if first < 0 {
							first = next - x
						}
						faults++
						next = arr.Next()
					}
					energy += eSp
					t += span
					x = end
					eKind, wKind := eCCP, sc.wall[checkpoint.CCP]
					if j == m-1 {
						eKind, wKind = eCSCP, sc.wall[checkpoint.CSCP]
					}
					energy += eKind
					t += wKind
					if first >= 0 {
						energy += eRB
						t += sc.rollback
						detected = true
						break
					}
				}
				if !detected {
					kept = cur * f
				}
			}

			rc -= kept
			if detected {
				if rf > 0 {
					rf--
				}
				// Fig. 6 lines 15–17: re-take the speed decision and the
				// interval plan. A BadConfig here keeps the previous plan,
				// exactly as the scalar loop ignores replan's result
				// mid-run (fixed-speed badness is static and already
				// caught by the initial plan).
				if pSC, pItv, pSub, pBad := st.plan(rc, D-t, lam, rf); !pBad {
					sc = pSC
					f = sc.pt.Freq
					itv, subLen = pItv, pSub
				}
			}
			if rc <= sim.EpsWork {
				completed = t <= D
				break
			}
		}
		b.Completed[i] = completed
		b.Energy[i] = energy
		b.Time[i] = t
		b.Faults[i] = float64(faults)
		b.Switches[i] = float64(switches)
	}
	return true
}
