package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/checkpoint"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/task"
)

func params(u, baselineFreq, lambda float64, k int, costs checkpoint.Costs) sim.Params {
	tk, err := task.FromUtilization("t", u, baselineFreq, 10000, k)
	if err != nil {
		panic(err)
	}
	return sim.Params{Task: tk, Costs: costs, Lambda: lambda}
}

// runMany returns (P, mean E over completions) for a scheme.
func runMany(t *testing.T, s sim.Scheme, p sim.Params, reps int, seed uint64) (float64, float64) {
	t.Helper()
	src := rng.New(seed)
	done := 0
	var esum float64
	for i := 0; i < reps; i++ {
		r := s.Run(p, src.Split())
		if r.Completed {
			done++
			esum += r.Energy
		}
	}
	if done == 0 {
		return 0, math.NaN()
	}
	return float64(done) / float64(reps), esum / float64(done)
}

func TestFaultFreeCompletionDeterministic(t *testing.T) {
	// λ = 0: every scheme must complete exactly once, on time, with
	// energy equal to V²·(work + checkpoint overhead)·replicas.
	p := params(0.76, 1, 0, 5, checkpoint.SCPSetting())
	for _, s := range []sim.Scheme{
		NewPoissonScheme(1), NewKFTScheme(1), NewADTDVS(),
		NewAdaptDVSSCP(), NewAdaptDVSCCP(), NewAdaptSCP(1), NewAdaptCCP(1),
	} {
		r := s.Run(p, rng.New(1))
		if !r.Completed {
			t.Fatalf("%s: fault-free run failed (%s)", s.Name(), r.Reason)
		}
		if r.Faults != 0 || r.Detections != 0 {
			t.Fatalf("%s: phantom faults %d/%d", s.Name(), r.Faults, r.Detections)
		}
		if r.Time > p.Task.Deadline {
			t.Fatalf("%s: completion %v past deadline", s.Name(), r.Time)
		}
		// Work alone costs 2 replicas × 7600 cycles × V² ≥ 2·7600·2.
		if r.Energy < 2*7600*2 {
			t.Fatalf("%s: energy %v below bare work", s.Name(), r.Energy)
		}
	}
}

func TestFaultFreeEnergyExact(t *testing.T) {
	// Poisson baseline at f1, λ=0 → single interval (no faults expected),
	// one CSCP: E = 2·(N + 22)·2.
	p := params(0.76, 1, 0, 5, checkpoint.SCPSetting())
	r := NewPoissonScheme(1).Run(p, rng.New(1))
	want := 2.0 * (7600 + 22) * 2
	if math.Abs(r.Energy-want) > 1e-6 {
		t.Fatalf("energy = %v, want %v", r.Energy, want)
	}
	if r.CSCPs != 1 {
		t.Fatalf("CSCPs = %d, want 1", r.CSCPs)
	}
}

func TestDeterministicGivenSeed(t *testing.T) {
	p := params(0.8, 1, 0.0014, 5, checkpoint.SCPSetting())
	for _, s := range []sim.Scheme{NewPoissonScheme(1), NewAdaptDVSSCP(), NewAdaptDVSCCP()} {
		a := s.Run(p, rng.New(99))
		b := s.Run(p, rng.New(99))
		if a != b {
			t.Fatalf("%s: non-deterministic results %+v vs %+v", s.Name(), a, b)
		}
	}
}

func TestInfeasibleAtF1FailsImmediately(t *testing.T) {
	// U > 1 at f1: the fixed-speed baseline can never finish; the run
	// must fail without completing, quickly.
	p := params(1.05, 1, 0.0001, 1, checkpoint.SCPSetting())
	r := NewPoissonScheme(1).Run(p, rng.New(3))
	if r.Completed {
		t.Fatal("infeasible run completed")
	}
	if r.Reason != sim.FailInfeasible {
		t.Fatalf("reason = %q, want infeasible", r.Reason)
	}
	if r.Time != 0 {
		t.Fatalf("failed at t=%v, want immediate", r.Time)
	}
}

func TestU100BaselinesNeverComplete(t *testing.T) {
	// Paper Tables 1b/3b, U = 1.00 rows: P = 0 for Poisson and k-f-t at
	// f1 — checkpoint overhead alone overruns the deadline.
	p := params(1.00, 1, 1e-4, 1, checkpoint.SCPSetting())
	for _, s := range []sim.Scheme{NewPoissonScheme(1), NewKFTScheme(1)} {
		pp, _ := runMany(t, s, p, 200, 4)
		if pp != 0 {
			t.Fatalf("%s: P = %v at U=1.00/f1, want 0", s.Name(), pp)
		}
	}
}

func TestDVSRescuesU100(t *testing.T) {
	// The DVS schemes switch to f2 and complete nearly always.
	p := params(1.00, 1, 1e-4, 1, checkpoint.SCPSetting())
	for _, s := range []sim.Scheme{NewADTDVS(), NewAdaptDVSSCP(), NewAdaptDVSCCP()} {
		pp, _ := runMany(t, s, p, 300, 5)
		if pp < 0.97 {
			t.Fatalf("%s: P = %v at U=1.00, want ≳0.99", s.Name(), pp)
		}
	}
}

func TestHigherLambdaLowersP(t *testing.T) {
	s := NewPoissonScheme(1)
	pLow := params(0.78, 1, 0.0010, 5, checkpoint.SCPSetting())
	pHigh := params(0.78, 1, 0.0020, 5, checkpoint.SCPSetting())
	low, _ := runMany(t, s, pLow, 1000, 6)
	high, _ := runMany(t, s, pHigh, 1000, 6)
	if high >= low {
		t.Fatalf("P not decreasing in λ: %v -> %v", low, high)
	}
}

func TestFasterBaselineUsesMoreEnergy(t *testing.T) {
	// Same absolute task; baseline at f2 completes more but at ~2× the
	// energy per cycle.
	tk, _ := task.FromUtilization("t", 0.78, 1, 10000, 5)
	p := sim.Params{Task: tk, Costs: checkpoint.SCPSetting(), Lambda: 0.0005}
	_, eSlow := runMany(t, NewPoissonScheme(1), p, 500, 7)
	pFast, eFast := runMany(t, NewPoissonScheme(2), p, 500, 7)
	if pFast < 0.99 {
		t.Fatalf("f2 baseline should nearly always complete, P=%v", pFast)
	}
	if !(eFast > 1.7*eSlow) {
		t.Fatalf("f2 energy %v not ≈2× f1 energy %v", eFast, eSlow)
	}
}

// --- Paper shape assertions (reduced repetition counts) ---

func TestShapeTable1aOrdering(t *testing.T) {
	// High λ, U=0.76..0.82, k=5, f1 baselines: adaptive DVS schemes
	// complete ≈ always; baselines almost never; A_D_S uses less energy
	// than A_D.
	p := params(0.78, 1, 0.0014, 5, checkpoint.SCPSetting())
	pPoisson, _ := runMany(t, NewPoissonScheme(1), p, 800, 8)
	pKFT, _ := runMany(t, NewKFTScheme(1), p, 800, 9)
	pAD, eAD := runMany(t, NewADTDVS(), p, 800, 10)
	pADS, eADS := runMany(t, NewAdaptDVSSCP(), p, 800, 11)

	if pPoisson > 0.2 || pKFT > 0.2 {
		t.Fatalf("baselines too successful: %v %v", pPoisson, pKFT)
	}
	if pAD < 0.98 || pADS < 0.98 {
		t.Fatalf("adaptive schemes too weak: A_D=%v A_D_S=%v", pAD, pADS)
	}
	if pADS < pAD-0.01 {
		t.Fatalf("A_D_S P (%v) should not trail A_D (%v)", pADS, pAD)
	}
	if !(eADS < eAD) {
		t.Fatalf("A_D_S energy %v should beat A_D %v", eADS, eAD)
	}
	// Paper ratio ≈ 0.92; allow generous band.
	if r := eADS / eAD; r < 0.85 || r > 0.98 {
		t.Fatalf("A_D_S/A_D energy ratio %v outside [0.85, 0.98]", r)
	}
}

func TestShapeTable3aOrdering(t *testing.T) {
	// CCP setting: same story with A_D_C.
	p := params(0.78, 1, 0.0014, 5, checkpoint.CCPSetting())
	pAD, eAD := runMany(t, NewADTDVS(), p, 800, 12)
	pADC, eADC := runMany(t, NewAdaptDVSCCP(), p, 800, 13)
	if pADC < pAD-0.01 {
		t.Fatalf("A_D_C P (%v) trails A_D (%v)", pADC, pAD)
	}
	if !(eADC < eAD) {
		t.Fatalf("A_D_C energy %v should beat A_D %v", eADC, eAD)
	}
}

func TestShapeTable2aADSAdvantage(t *testing.T) {
	// Baselines at f2, heavy task (U = N/(f2·D) = 0.78): A_D ≈ baselines,
	// A_D_S clearly ahead (paper: 0.47 vs 0.84 at λ=0.0014).
	p := params(0.78, 2, 0.0014, 5, checkpoint.SCPSetting())
	pPoisson, _ := runMany(t, NewPoissonScheme(2), p, 800, 14)
	pADS, _ := runMany(t, NewAdaptDVSSCP(), p, 800, 15)
	if !(pADS > pPoisson+0.15) {
		t.Fatalf("A_D_S (%v) should clearly beat f2 Poisson baseline (%v)", pADS, pPoisson)
	}
}

func TestShapeSCPvsCCPSymmetric(t *testing.T) {
	// In the SCP cost setting the SCP variant should be at least as good
	// as dropping sub-checkpoints entirely; symmetrically for CCP.
	pS := params(0.80, 2, 0.0014, 5, checkpoint.SCPSetting())
	pAD, _ := runMany(t, NewADTDVS(), pS, 800, 16)
	pADS, _ := runMany(t, NewAdaptDVSSCP(), pS, 800, 17)
	if pADS < pAD {
		t.Fatalf("SCP setting: A_D_S %v < A_D %v", pADS, pAD)
	}
	pC := params(0.80, 2, 0.0014, 5, checkpoint.CCPSetting())
	pAD2, _ := runMany(t, NewADTDVS(), pC, 800, 18)
	pADC, _ := runMany(t, NewAdaptDVSCCP(), pC, 800, 19)
	if pADC < pAD2 {
		t.Fatalf("CCP setting: A_D_C %v < A_D %v", pADC, pAD2)
	}
}

// --- engine-level semantics ---

func TestTraceRecordsTimeline(t *testing.T) {
	tr := &sim.Trace{}
	p := params(0.80, 1, 0.0014, 5, checkpoint.SCPSetting())
	p.Trace = tr
	r := NewAdaptDVSSCP().Run(p, rng.New(44))
	if got := tr.Count(sim.EvFault); got != r.Faults {
		t.Fatalf("trace faults %d != result %d", got, r.Faults)
	}
	if got := tr.Count(sim.EvRollback); got != r.Detections {
		t.Fatalf("trace rollbacks %d != detections %d", got, r.Detections)
	}
	if got := tr.CheckpointCount(checkpoint.CSCP); got != r.CSCPs {
		t.Fatalf("trace CSCPs %d != result %d", got, r.CSCPs)
	}
	last := tr.Events[len(tr.Events)-1]
	if r.Completed && last.Kind != sim.EvComplete {
		t.Fatalf("trace does not end in complete: %v", last.Kind)
	}
	// Timeline must be non-decreasing.
	for i := 1; i < len(tr.Events); i++ {
		if tr.Events[i].Time < tr.Events[i-1].Time-1e-9 {
			t.Fatalf("trace time goes backwards at %d", i)
		}
	}
}

func TestSchemeNames(t *testing.T) {
	for s, want := range map[sim.Scheme]string{
		NewPoissonScheme(1): "Poisson(f=1)",
		NewKFTScheme(2):     "k-f-t(f=2)",
		NewADTDVS():         "A_D",
		NewAdaptDVSSCP():    "A_D_S",
		NewAdaptDVSCCP():    "A_D_C",
		NewAdaptSCP(1):      "adapchp-SCP(f=1)",
	} {
		if got := s.Name(); got != want {
			t.Errorf("Name = %q, want %q", got, want)
		}
	}
}

func TestFixedSchemeGuardsBadFreq(t *testing.T) {
	p := params(0.76, 1, 0.001, 5, checkpoint.SCPSetting())
	schemes := []sim.Scheme{
		NewPoissonScheme(3), NewKFTScheme(3), NewAdaptSCP(3), NewAdaptCCP(3),
	}
	for _, s := range schemes {
		r := s.Run(p, rng.New(1))
		if r.Completed || r.Reason != sim.FailBadConfig {
			t.Errorf("%s at unknown frequency: got completed=%v reason=%q, want %q",
				s.Name(), r.Completed, r.Reason, sim.FailBadConfig)
		}
		if cs, ok := s.(sim.ContextScheme); ok {
			rc := sim.NewRunContext()
			r := cs.RunCtx(rc, p, rc.Reseed(1))
			if r.Completed || r.Reason != sim.FailBadConfig {
				t.Errorf("%s RunCtx at unknown frequency: got reason=%q, want %q",
					s.Name(), r.Reason, sim.FailBadConfig)
			}
		}
	}
}

func TestPropertyResultInvariants(t *testing.T) {
	schemes := []sim.Scheme{
		NewPoissonScheme(1), NewKFTScheme(1), NewADTDVS(),
		NewAdaptDVSSCP(), NewAdaptDVSCCP(),
	}
	f := func(seed uint64, uRaw, lamRaw uint16, kRaw uint8) bool {
		u := 0.5 + float64(uRaw%60)/100        // 0.5 .. 1.09
		lambda := float64(lamRaw%180) / 100000 // 0 .. 1.8e-3
		k := int(kRaw % 8)
		p := params(u, 1, lambda, k, checkpoint.SCPSetting())
		for _, s := range schemes {
			r := s.Run(p, rng.New(seed))
			if r.Energy < 0 || math.IsNaN(r.Energy) {
				return false
			}
			if r.Time < 0 || math.IsNaN(r.Time) {
				return false
			}
			if r.Completed && r.Time > p.Task.Deadline {
				return false
			}
			if r.Completed && r.Reason != sim.FailNone {
				return false
			}
			if !r.Completed && r.Reason == sim.FailNone {
				return false
			}
			if r.Detections > r.Faults {
				return false
			}
			// Cycles must cover at least the useful work if completed.
			if r.Completed && r.Cycles < sim.Replicas*p.Task.Cycles-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyEnergyAtLeastWorkCost(t *testing.T) {
	// Completed runs can never use less energy than the bare work at the
	// cheapest operating point.
	f := func(seed uint64, lamRaw uint16) bool {
		lambda := float64(lamRaw%150) / 100000
		p := params(0.76, 1, lambda, 5, checkpoint.SCPSetting())
		r := NewAdaptDVSSCP().Run(p, rng.New(seed))
		if !r.Completed {
			return true
		}
		min := sim.Replicas * p.Task.Cycles * 2 // V1² = 2
		return r.Energy >= min-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestFig3FixedSpeedAdaptiveBeatsStaticBaselines(t *testing.T) {
	// The Fig. 3 scheme (adaptive intervals + SCPs, no DVS) at f1 should
	// outlast the static baselines at moderate λ and utilisation where
	// the adaptive interval choice and cheap rollbacks matter.
	p := params(0.72, 1, 0.0010, 5, checkpoint.SCPSetting())
	pStatic, _ := runMany(t, NewPoissonScheme(1), p, 800, 51)
	pAdapt, _ := runMany(t, NewAdaptSCP(1), p, 800, 52)
	if !(pAdapt > pStatic+0.1) {
		t.Fatalf("fig-3 scheme (%v) should clearly beat static Poisson (%v)", pAdapt, pStatic)
	}
}

func TestFig3NoDVSNeverSwitches(t *testing.T) {
	p := params(0.72, 1, 0.0014, 5, checkpoint.SCPSetting())
	for seed := uint64(0); seed < 20; seed++ {
		r := NewAdaptSCP(1).Run(p, rng.New(seed))
		if r.Switches != 0 {
			t.Fatalf("fixed-speed scheme switched speeds %d times", r.Switches)
		}
	}
}

func TestAdaptCCPFixedSpeedWorks(t *testing.T) {
	p := params(0.72, 1, 0.0014, 5, checkpoint.CCPSetting())
	pp, _ := runMany(t, NewAdaptCCP(1), p, 500, 53)
	if pp < 0.5 {
		t.Fatalf("adapchp-CCP P = %v", pp)
	}
}

func TestFailReasonPaths(t *testing.T) {
	// Infeasible from the start at fixed speed.
	p := params(1.2, 1, 1e-4, 1, checkpoint.SCPSetting())
	r := NewAdaptSCP(1).Run(p, rng.New(1))
	if r.Completed || r.Reason != sim.FailInfeasible {
		t.Fatalf("want infeasible, got %+v", r)
	}
	// DVS rescues the same task.
	r2 := NewAdaptDVSSCP().Run(p, rng.New(1))
	if !r2.Completed {
		t.Fatalf("DVS should rescue U=1.2: %+v", r2)
	}
}

func TestSwitchesReportedUnderDVS(t *testing.T) {
	// At U=0.78/λ=0.0014 the scheme starts fast and downshifts on a
	// fault: most runs should record at least one switch.
	p := params(0.78, 1, 0.0014, 5, checkpoint.SCPSetting())
	switched := 0
	for seed := uint64(0); seed < 50; seed++ {
		if NewAdaptDVSSCP().Run(p, rng.New(seed)).Switches > 0 {
			switched++
		}
	}
	if switched < 25 {
		t.Fatalf("only %d/50 runs switched speed", switched)
	}
}
