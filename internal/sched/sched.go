// Package sched extends the single-task model of the paper to periodic
// task sets scheduled by preemptive EDF with per-task checkpointing —
// the territory of the paper's ref [2] (Zhang & Chakrabarty, DATE'04,
// "Task feasibility analysis and dynamic voltage scaling in
// fault-tolerant real-time embedded systems") and its stated future
// work.
//
// Two pieces are provided: a closed-form feasibility test based on the
// k-fault-tolerant worst case (Feasible/MinSpeed — the energy-aware
// speed assignment picks the slowest operating point that stays
// feasible), and a Monte-Carlo EDF simulator with fault injection and
// per-job rollback (Simulate).
package sched

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/checkpoint"
	"repro/internal/cpu"
	"repro/internal/policy"
	"repro/internal/rng"
	"repro/internal/task"
)

// EffectiveDemand returns the fault-tolerant worst-case execution time of
// one job of tk at speed f: the k-fault-tolerant completion bound
// C/f + 2·sqrt(k·(C/f)·(c/f)) + k·(c/f) of Lee/Shin/Min, i.e. the demand
// EDF must budget for.
func EffectiveDemand(tk task.Task, costs checkpoint.Costs, f float64) float64 {
	k := float64(tk.FaultBudget)
	c := costs.CSCPCycles() / f
	rt := tk.Cycles / f
	if k == 0 {
		return rt + c // a single closing checkpoint
	}
	return policy.WorstCaseKFT(rt, k, c)
}

// Feasible reports whether the task set is EDF-schedulable at speed f
// with every job budgeted for its fault-tolerant worst case, and returns
// the effective utilisation ΣW_i/T_i.
func Feasible(set task.Set, costs checkpoint.Costs, f float64) (bool, float64, error) {
	if err := set.Validate(); err != nil {
		return false, 0, err
	}
	if err := costs.Validate(); err != nil {
		return false, 0, err
	}
	if f <= 0 {
		return false, 0, errors.New("sched: non-positive speed")
	}
	u := 0.0
	for _, tk := range set {
		w := EffectiveDemand(tk, costs, f)
		if w > tk.Deadline {
			return false, math.Inf(1), nil // a single job already misses
		}
		u += w / tk.Period
	}
	return u <= 1, u, nil
}

// MinSpeed returns the slowest operating point of the model at which the
// set remains feasible — the energy-aware static speed assignment.
func MinSpeed(set task.Set, costs checkpoint.Costs, model *cpu.Model) (cpu.OperatingPoint, error) {
	if model == nil {
		model = cpu.TwoSpeed()
	}
	for _, pt := range model.Points() {
		ok, _, err := Feasible(set, costs, pt.Freq)
		if err != nil {
			return cpu.OperatingPoint{}, err
		}
		if ok {
			return pt, nil
		}
	}
	return cpu.OperatingPoint{}, errors.New("sched: no operating point keeps the set feasible")
}

// Config parameterises an EDF simulation.
type Config struct {
	Set   task.Set
	Costs checkpoint.Costs
	// Lambda is the fault rate per unit of execution time; a fault
	// corrupts the running job, rolling it back to its last checkpoint.
	Lambda float64
	// Freq is the fixed processor speed; zero means MinSpeed.
	Freq float64
	// CPU is the processor model (nil = paper's two-speed part).
	CPU *cpu.Model
	// Horizon is the simulated wall time; zero means one hyperperiod.
	Horizon float64
}

// Report is the outcome of one EDF simulation.
type Report struct {
	// Jobs released, completed on time, and missed.
	Jobs, OnTime, Misses int
	// Energy is the V²·cycles total across the DMR pair.
	Energy float64
	// Faults injected and rollbacks performed.
	Faults, Rollbacks int
	// MeanResponse is the average response time of on-time jobs.
	MeanResponse float64
	// Freq is the speed the simulation ran at.
	Freq float64
}

// jobState is one released job.
type jobState struct {
	taskIdx   int
	release   float64
	deadline  float64
	remaining float64 // cycles
	progress  float64 // cycles since last checkpoint (lost on fault)
	interval  float64 // checkpoint interval in cycles
}

// Simulate runs preemptive EDF with per-job k-fault-tolerant
// checkpointing over the horizon. Jobs that reach their deadline
// unfinished are aborted and counted as misses; faults roll the running
// job back to its most recent checkpoint.
func Simulate(cfg Config, src *rng.Source) (Report, error) {
	if err := cfg.Set.Validate(); err != nil {
		return Report{}, err
	}
	if err := cfg.Costs.Validate(); err != nil {
		return Report{}, err
	}
	if cfg.Lambda < 0 {
		return Report{}, errors.New("sched: negative fault rate")
	}
	if src == nil {
		return Report{}, errors.New("sched: nil rng source")
	}
	model := cfg.CPU
	if model == nil {
		model = cpu.TwoSpeed()
	}
	var pt cpu.OperatingPoint
	if cfg.Freq > 0 {
		var err error
		if pt, err = model.AtFreq(cfg.Freq); err != nil {
			return Report{}, err
		}
	} else {
		var err error
		if pt, err = MinSpeed(cfg.Set, cfg.Costs, model); err != nil {
			return Report{}, err
		}
	}
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = cfg.Set.Hyperperiod()
	}

	meter := cpu.NewMeter(2)
	f := pt.Freq
	ckptWall := cfg.Costs.CSCPCycles() / f
	rollWall := cfg.Costs.Rollback / f

	rep := Report{Freq: f}
	var respSum float64

	nextFault := math.Inf(1)
	if cfg.Lambda > 0 {
		nextFault = src.Exp(cfg.Lambda)
	}

	// Release schedule.
	type release struct {
		at      float64
		taskIdx int
	}
	var releases []release
	for i, tk := range cfg.Set {
		for at := 0.0; at < horizon; at += tk.Period {
			releases = append(releases, release{at, i})
		}
	}
	sort.Slice(releases, func(i, j int) bool { return releases[i].at < releases[j].at })

	newJob := func(i int, at float64) *jobState {
		tk := cfg.Set[i]
		// k-fault-tolerant interval in cycles; a zero budget means no
		// faults need tolerating, so the job takes only the single
		// closing checkpoint — exactly what EffectiveDemand budgets.
		interval := tk.Cycles
		if tk.FaultBudget >= 1 {
			interval = policy.I2(tk.Cycles, float64(tk.FaultBudget), cfg.Costs.CSCPCycles())
		}
		return &jobState{
			taskIdx:   i,
			release:   at,
			deadline:  at + tk.Deadline,
			interval:  interval,
			remaining: tk.Cycles,
		}
	}

	var ready []*jobState
	relIdx := 0
	t := 0.0

	admit := func() {
		for relIdx < len(releases) && releases[relIdx].at <= t+1e-12 {
			ready = append(ready, newJob(releases[relIdx].taskIdx, releases[relIdx].at))
			rep.Jobs++
			relIdx++
		}
	}
	dropMissed := func() {
		kept := ready[:0]
		for _, j := range ready {
			if t >= j.deadline {
				rep.Misses++
				continue
			}
			kept = append(kept, j)
		}
		ready = kept
	}
	earliest := func() *jobState {
		var best *jobState
		for _, j := range ready {
			if best == nil || j.deadline < best.deadline {
				best = j
			}
		}
		return best
	}
	removeJob := func(target *jobState) {
		for i, j := range ready {
			if j == target {
				ready = append(ready[:i], ready[i+1:]...)
				return
			}
		}
	}

	const maxSteps = 10_000_000
	for step := 0; t < horizon && step < maxSteps; step++ {
		admit()
		dropMissed()
		j := earliest()
		if j == nil {
			if relIdx >= len(releases) {
				break
			}
			t = releases[relIdx].at
			continue
		}

		// Next scheduling boundary: job completion, next checkpoint,
		// next release, the job's own deadline, or the horizon.
		toCkpt := (j.interval - j.progress) / f
		toDone := j.remaining / f
		bound := math.Min(toCkpt, toDone)
		if relIdx < len(releases) {
			bound = math.Min(bound, releases[relIdx].at-t)
		}
		bound = math.Min(bound, j.deadline-t)
		bound = math.Min(bound, horizon-t)
		if bound < 0 {
			bound = 0
		}

		// Execute; a fault inside the span truncates it.
		span := bound
		faulted := false
		if nextFault < t+span {
			span = nextFault - t
			faulted = true
			nextFault += src.Exp(cfg.Lambda)
		}
		if span > 0 {
			meter.Segment(pt, span)
			t += span
			j.remaining -= span * f
			j.progress += span * f
		}
		rep.Faults += boolToInt(faulted)

		switch {
		case faulted:
			// Roll the running job back to its last checkpoint.
			j.remaining += j.progress
			j.progress = 0
			meter.Segment(pt, rollWall)
			t += rollWall
			rep.Rollbacks++
		case j.remaining <= 1e-9:
			// Closing checkpoint, then retire the job.
			meter.Segment(pt, ckptWall)
			t += ckptWall
			if t <= j.deadline {
				rep.OnTime++
				respSum += t - j.release
			} else {
				rep.Misses++
			}
			removeJob(j)
		case j.progress >= j.interval-1e-9:
			meter.Segment(pt, ckptWall)
			t += ckptWall
			j.progress = 0
		}
	}
	// Jobs still pending at the horizon with deadlines inside it missed.
	for _, j := range ready {
		if j.deadline <= horizon {
			rep.Misses++
		}
	}

	rep.Energy = meter.Energy()
	if rep.OnTime > 0 {
		rep.MeanResponse = respSum / float64(rep.OnTime)
	} else {
		rep.MeanResponse = math.NaN()
	}
	return rep, nil
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// String summarises a report for CLI output.
func (r Report) String() string {
	return fmt.Sprintf("f=%g jobs=%d on-time=%d misses=%d faults=%d rollbacks=%d energy=%.0f meanResp=%.1f",
		r.Freq, r.Jobs, r.OnTime, r.Misses, r.Faults, r.Rollbacks, r.Energy, r.MeanResponse)
}
