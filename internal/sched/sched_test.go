package sched

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/checkpoint"
	"repro/internal/cpu"
	"repro/internal/rng"
	"repro/internal/task"
)

func lightSet() task.Set {
	return task.Set{
		{Name: "ctl", Cycles: 800, Deadline: 4000, Period: 4000, FaultBudget: 2},
		{Name: "io", Cycles: 1200, Deadline: 6000, Period: 6000, FaultBudget: 2},
	}
}

func heavySet() task.Set {
	return task.Set{
		{Name: "a", Cycles: 3000, Deadline: 5000, Period: 5000, FaultBudget: 3},
		{Name: "b", Cycles: 4000, Deadline: 8000, Period: 8000, FaultBudget: 3},
		{Name: "c", Cycles: 2000, Deadline: 10000, Period: 10000, FaultBudget: 3},
	}
}

func TestEffectiveDemandExceedsRaw(t *testing.T) {
	tk := task.Task{Cycles: 1000, Deadline: 5000, Period: 5000, FaultBudget: 3}
	w := EffectiveDemand(tk, checkpoint.SCPSetting(), 1)
	if w <= 1000 {
		t.Fatalf("effective demand %v should exceed raw cycles", w)
	}
	w2 := EffectiveDemand(tk, checkpoint.SCPSetting(), 2)
	if w2 >= w {
		t.Fatalf("faster speed should shrink demand: %v vs %v", w2, w)
	}
	tk.FaultBudget = 0
	if w0 := EffectiveDemand(tk, checkpoint.SCPSetting(), 1); w0 != 1000+22 {
		t.Fatalf("k=0 demand = %v, want raw+one checkpoint", w0)
	}
}

func TestFeasibleLightSet(t *testing.T) {
	ok, u, err := Feasible(lightSet(), checkpoint.SCPSetting(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("light set infeasible at f1 (u=%v)", u)
	}
	if u <= 0 || u > 1 {
		t.Fatalf("utilisation %v out of range", u)
	}
}

func TestHeavySetNeedsFastSpeed(t *testing.T) {
	ok1, _, err := Feasible(heavySet(), checkpoint.SCPSetting(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok1 {
		t.Fatal("heavy set should be infeasible at f1")
	}
	ok2, _, err := Feasible(heavySet(), checkpoint.SCPSetting(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok2 {
		t.Fatal("heavy set should be feasible at f2")
	}
	pt, err := MinSpeed(heavySet(), checkpoint.SCPSetting(), cpu.TwoSpeed())
	if err != nil {
		t.Fatal(err)
	}
	if pt.Freq != 2 {
		t.Fatalf("MinSpeed = %v, want 2", pt.Freq)
	}
}

func TestMinSpeedPrefersSlow(t *testing.T) {
	pt, err := MinSpeed(lightSet(), checkpoint.SCPSetting(), cpu.TwoSpeed())
	if err != nil {
		t.Fatal(err)
	}
	if pt.Freq != 1 {
		t.Fatalf("MinSpeed = %v, want 1 (energy-aware)", pt.Freq)
	}
}

func TestMinSpeedErrorWhenHopeless(t *testing.T) {
	impossible := task.Set{{Name: "x", Cycles: 30000, Deadline: 5000, Period: 5000, FaultBudget: 1}}
	if _, err := MinSpeed(impossible, checkpoint.SCPSetting(), cpu.TwoSpeed()); err == nil {
		t.Fatal("hopeless set got a speed")
	}
}

func TestSimulateFaultFree(t *testing.T) {
	rep, err := Simulate(Config{Set: lightSet(), Costs: checkpoint.SCPSetting()}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Hyperperiod 12000: task ctl releases 3 jobs, io 2.
	if rep.Jobs != 5 {
		t.Fatalf("jobs = %d, want 5", rep.Jobs)
	}
	if rep.Misses != 0 {
		t.Fatalf("misses = %d, want 0 (feasible, fault-free)", rep.Misses)
	}
	if rep.OnTime != rep.Jobs {
		t.Fatalf("on-time %d != jobs %d", rep.OnTime, rep.Jobs)
	}
	if rep.Energy <= 0 {
		t.Fatalf("energy = %v", rep.Energy)
	}
	if math.IsNaN(rep.MeanResponse) || rep.MeanResponse <= 0 {
		t.Fatalf("mean response = %v", rep.MeanResponse)
	}
}

func TestSimulatePicksMinSpeedByDefault(t *testing.T) {
	rep, err := Simulate(Config{Set: heavySet(), Costs: checkpoint.SCPSetting()}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Freq != 2 {
		t.Fatalf("freq = %v, want MinSpeed 2", rep.Freq)
	}
	if rep.Misses != 0 {
		t.Fatalf("feasible set missed %d jobs fault-free", rep.Misses)
	}
}

func TestSimulateWithFaultsStillMostlyOnTime(t *testing.T) {
	cfg := Config{Set: lightSet(), Costs: checkpoint.SCPSetting(), Lambda: 5e-4, Horizon: 120000}
	rep, err := Simulate(cfg, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Faults == 0 {
		t.Fatal("no faults injected over a long horizon at λ=5e-4")
	}
	if rep.Rollbacks == 0 {
		t.Fatal("faults caused no rollbacks")
	}
	onTimeFrac := float64(rep.OnTime) / float64(rep.Jobs)
	if onTimeFrac < 0.9 {
		t.Fatalf("on-time fraction %v too low for a lightly loaded set", onTimeFrac)
	}
}

func TestSimulateOverloadMisses(t *testing.T) {
	overload := task.Set{
		{Name: "x", Cycles: 9000, Deadline: 10000, Period: 10000, FaultBudget: 1},
		{Name: "y", Cycles: 9000, Deadline: 10000, Period: 10000, FaultBudget: 1},
	}
	rep, err := Simulate(Config{Set: overload, Costs: checkpoint.SCPSetting(), Freq: 1}, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Misses == 0 {
		t.Fatal("overloaded set missed nothing")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	cfg := Config{Set: lightSet(), Costs: checkpoint.SCPSetting(), Lambda: 1e-3}
	a, _ := Simulate(cfg, rng.New(7))
	b, _ := Simulate(cfg, rng.New(7))
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestSimulateValidation(t *testing.T) {
	good := Config{Set: lightSet(), Costs: checkpoint.SCPSetting()}
	if _, err := Simulate(good, nil); err == nil {
		t.Error("nil source accepted")
	}
	bad := good
	bad.Lambda = -1
	if _, err := Simulate(bad, rng.New(1)); err == nil {
		t.Error("negative λ accepted")
	}
	bad = good
	bad.Set = task.Set{}
	if _, err := Simulate(bad, rng.New(1)); err == nil {
		t.Error("empty set accepted")
	}
	bad = good
	bad.Freq = 3
	if _, err := Simulate(bad, rng.New(1)); err == nil {
		t.Error("unknown frequency accepted")
	}
}

func TestEnergyScalesWithSpeed(t *testing.T) {
	slow, _ := Simulate(Config{Set: lightSet(), Costs: checkpoint.SCPSetting(), Freq: 1}, rng.New(5))
	fast, _ := Simulate(Config{Set: lightSet(), Costs: checkpoint.SCPSetting(), Freq: 2}, rng.New(5))
	if !(fast.Energy > 1.5*slow.Energy) {
		t.Fatalf("f2 energy %v should be ≈2× f1 energy %v", fast.Energy, slow.Energy)
	}
}

func TestParseSet(t *testing.T) {
	set, err := ParseSet("800:4000:2, 1500:10000:3")
	if err != nil {
		t.Fatal(err)
	}
	if len(set) != 2 {
		t.Fatalf("len = %d", len(set))
	}
	if set[0].Cycles != 800 || set[0].Period != 4000 || set[0].FaultBudget != 2 {
		t.Fatalf("task 0 = %+v", set[0])
	}
	if set[1].Deadline != set[1].Period {
		t.Fatal("implicit deadline not applied")
	}
	for _, bad := range []string{
		"", "800:4000", "x:4000:2", "800:y:2", "800:4000:z", "0:4000:2",
	} {
		if _, err := ParseSet(bad); err == nil {
			t.Errorf("ParseSet(%q) accepted", bad)
		}
	}
}

func TestFeasibleRMStricterThanEDF(t *testing.T) {
	// A set with effective utilisation between the RM bound and 1 is
	// EDF-feasible but fails the RM sufficient test.
	set := task.Set{
		{Name: "a", Cycles: 2600, Deadline: 10000, Period: 10000, FaultBudget: 2},
		{Name: "b", Cycles: 2600, Deadline: 11000, Period: 11000, FaultBudget: 2},
		{Name: "c", Cycles: 2600, Deadline: 12000, Period: 12000, FaultBudget: 2},
	}
	edfOK, u, err := Feasible(set, checkpoint.SCPSetting(), 1)
	if err != nil {
		t.Fatal(err)
	}
	rmOK, uRM, bound, err := FeasibleRM(set, checkpoint.SCPSetting(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if u != uRM {
		t.Fatalf("utilisations differ: %v vs %v", u, uRM)
	}
	if bound >= 1 || bound < 0.7 {
		t.Fatalf("RM bound = %v, want ≈0.78 for n=3", bound)
	}
	if !(edfOK && !rmOK && u > bound && u <= 1) {
		t.Fatalf("expected EDF-yes/RM-no: edf=%v rm=%v u=%v bound=%v", edfOK, rmOK, u, bound)
	}
	// A light set passes both.
	light := lightSet()
	rmOK2, _, _, err := FeasibleRM(light, checkpoint.SCPSetting(), 1)
	if err != nil || !rmOK2 {
		t.Fatalf("light set should pass RM: %v %v", rmOK2, err)
	}
}

func TestPropertyFeasibleImpliesNoFaultFreeMisses(t *testing.T) {
	// Cross-module invariant: if the k-fault-tolerant EDF test accepts a
	// random task set at speed f, the fault-free simulation over one
	// hyperperiod must meet every deadline (the analysis budgets *more*
	// than the fault-free demand).
	f := func(seed uint64, n uint8, cRaw, pRaw [4]uint16) bool {
		count := int(n%3) + 2
		var set task.Set
		for i := 0; i < count; i++ {
			period := 2000 + float64(pRaw[i%4]%6)*1000 // 2000..7000 step 1000
			cycles := 100 + float64(cRaw[i%4]%900)
			set = append(set, task.Task{
				Name:   "p",
				Cycles: cycles, Deadline: period, Period: period,
				FaultBudget: int(seed % 4),
			})
		}
		for _, freq := range []float64{1, 2} {
			ok, _, err := Feasible(set, checkpoint.SCPSetting(), freq)
			if err != nil {
				return false
			}
			if !ok {
				continue
			}
			rep, err := Simulate(Config{Set: set, Costs: checkpoint.SCPSetting(), Freq: freq}, rng.New(seed))
			if err != nil {
				return false
			}
			if rep.Misses != 0 {
				t.Logf("feasible set missed %d jobs at f=%v: %+v", rep.Misses, freq, set)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
