package sched

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/task"
)

// ParseSet parses a compact task-set specification: comma-separated
// "cycles:period:k" triples, e.g. "800:4000:2,1500:10000:3". Deadlines
// equal periods (implicit-deadline model). Used by cmd/edfsim and handy
// for test fixtures.
func ParseSet(spec string) (task.Set, error) {
	var set task.Set
	for i, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("sched: task %d: want cycles:period:k, got %q", i, part)
		}
		cycles, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("sched: task %d: bad cycles %q", i, fields[0])
		}
		period, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return nil, fmt.Errorf("sched: task %d: bad period %q", i, fields[1])
		}
		k, err := strconv.Atoi(fields[2])
		if err != nil {
			return nil, fmt.Errorf("sched: task %d: bad fault budget %q", i, fields[2])
		}
		set = append(set, task.Task{
			Name:   fmt.Sprintf("t%d", i),
			Cycles: cycles, Deadline: period, Period: period,
			FaultBudget: k,
		})
	}
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}

// FeasibleRM reports whether the set passes the Liu–Layland
// rate-monotonic utilisation bound n·(2^{1/n} − 1) with every job
// budgeted for its fault-tolerant worst case — the sufficient (not
// necessary) fixed-priority counterpart of the EDF test. Returned
// alongside: the effective utilisation and the bound.
func FeasibleRM(set task.Set, costs checkpoint.Costs, f float64) (bool, float64, float64, error) {
	ok, u, err := Feasible(set, costs, f)
	if err != nil {
		return false, 0, 0, err
	}
	_ = ok // EDF feasibility implies u is computed; RM uses its own bound
	n := float64(len(set))
	bound := n * (math.Pow(2, 1/n) - 1)
	return u <= bound, u, bound, nil
}
