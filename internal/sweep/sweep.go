// Package sweep produces parameter-sweep series — the figure-like
// artefacts of the evaluation. The paper itself prints only tables;
// these sweeps trace the same quantities (P and E per scheme) as
// continuous curves over λ, utilisation, or the store/compare cost
// ratio, which is how the crossovers the tables sample become visible.
package sweep

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/store"
	"repro/internal/task"
)

// Point is one sample of a sweep: the swept parameter value and the
// per-scheme summaries.
type Point struct {
	X       float64
	Results []stats.Summary
}

// Series is a completed sweep.
type Series struct {
	// Name labels the sweep; XLabel the swept parameter.
	Name, XLabel string
	// Schemes holds the column labels.
	Schemes []string
	Points  []Point
}

// Config fixes the non-swept parameters.
type Config struct {
	// U is the task utilisation at UFreq; Deadline is D; K the budget.
	U, UFreq, Deadline float64
	K                  int
	Costs              checkpoint.Costs
	Lambda             float64
	// Store, when non-nil, runs every point under the tiered checkpoint
	// store model (internal/store). The StoreCapacity sweep overrides it
	// per point.
	Store *store.Config
	// Reps per point and base seed.
	Reps int
	Seed uint64
}

func (c Config) reps() int {
	if c.Reps <= 0 {
		return 2000
	}
	return c.Reps
}

func (c Config) params() (sim.Params, error) {
	tk, err := task.FromUtilization("sweep", c.U, c.UFreq, c.Deadline, c.K)
	if err != nil {
		return sim.Params{}, err
	}
	return sim.Params{Task: tk, Costs: c.Costs, Lambda: c.Lambda, Store: c.Store}, nil
}

func (c Config) cell(s sim.Scheme, p sim.Params, x float64) stats.Summary {
	return c.cellSeeded(s, p, c.Seed^math.Float64bits(x)^hashName(s.Name()))
}

func (c Config) cellSeeded(s sim.Scheme, p sim.Params, pointSeed uint64) stats.Summary {
	rctx := sim.NewRunContext()
	var cell stats.Cell
	for i := 0; i < c.reps(); i++ {
		// Each rep's stream is the i-th member of the counter-based seed
		// family — the experiment runner's derivation — so any rep can be
		// reconstructed in isolation; the engine and plan caches are
		// reused across reps.
		r := sim.RunScheme(rctx, s, p, rctx.Reseed(rng.Stream(pointSeed, i)))
		cell.Observe(r.Completed, r.Energy, r.Time, float64(r.Faults), float64(r.Switches))
	}
	return cell.Summary()
}

func hashName(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, b := range []byte(s) {
		h ^= uint64(b)
		h *= prime
	}
	return h
}

// Lambda sweeps the fault rate over the given values.
func Lambda(cfg Config, schemes []sim.Scheme, lambdas []float64) (Series, error) {
	ser := newSeries("P/E vs fault rate", "lambda", schemes)
	for _, lam := range lambdas {
		c := cfg
		c.Lambda = lam
		p, err := c.params()
		if err != nil {
			return Series{}, err
		}
		ser.Points = append(ser.Points, point(c, schemes, p, lam))
	}
	return ser, nil
}

// Utilization sweeps U over the given values.
func Utilization(cfg Config, schemes []sim.Scheme, us []float64) (Series, error) {
	ser := newSeries("P/E vs utilisation", "U", schemes)
	for _, u := range us {
		c := cfg
		c.U = u
		p, err := c.params()
		if err != nil {
			return Series{}, err
		}
		ser.Points = append(ser.Points, point(c, schemes, p, u))
	}
	return ser, nil
}

// CostRatio sweeps the store/compare split at a fixed CSCP cost
// c = ts + tcp: x is the store share ts/(ts+tcp). This is the sweep
// behind the paper's central design rule — add SCPs where comparison
// dominates, CCPs where storage does.
func CostRatio(cfg Config, schemes []sim.Scheme, shares []float64) (Series, error) {
	total := cfg.Costs.CSCPCycles()
	ser := newSeries("P/E vs store share of checkpoint cost", "ts_share", schemes)
	for _, share := range shares {
		if share < 0 || share > 1 {
			return Series{}, fmt.Errorf("sweep: store share %v outside [0,1]", share)
		}
		c := cfg
		c.Costs = checkpoint.Costs{
			Store:    share * total,
			Compare:  (1 - share) * total,
			Rollback: cfg.Costs.Rollback,
		}
		p, err := c.params()
		if err != nil {
			return Series{}, err
		}
		ser.Points = append(ser.Points, point(c, schemes, p, share))
	}
	return ser, nil
}

// StoreCapacity sweeps the retained-checkpoint bound k of the default
// NVRAM+flash stack (store.DefaultConfig) — the capacity-vs-P/E
// frontier of the tiered-store model. k <= 0 runs the unlimited stack
// (plotted at X=0). Unlike the other sweeps, every point reuses the
// same rep streams (common random numbers: the point seed omits X), so
// the frontier reflects the capacity effect alone — shrinking k can
// only evict more rollback targets on an identical fault history, which
// is what makes the P curve monotone up to model effect rather than
// sampling noise.
func StoreCapacity(cfg Config, schemes []sim.Scheme, ks []int) (Series, error) {
	ser := newSeries("P/E vs checkpoint-set capacity", "k", schemes)
	for _, k := range ks {
		c := cfg
		c.Store = store.DefaultConfig(k)
		p, err := c.params()
		if err != nil {
			return Series{}, err
		}
		x := float64(k)
		if k <= 0 {
			x = 0
		}
		pt := Point{X: x, Results: make([]stats.Summary, len(schemes))}
		for i, s := range schemes {
			pt.Results[i] = c.cellSeeded(s, p, c.Seed^hashName(s.Name()))
		}
		ser.Points = append(ser.Points, pt)
	}
	return ser, nil
}

func newSeries(name, xlabel string, schemes []sim.Scheme) Series {
	labels := make([]string, len(schemes))
	for i, s := range schemes {
		labels[i] = s.Name()
	}
	return Series{Name: name, XLabel: xlabel, Schemes: labels}
}

func point(c Config, schemes []sim.Scheme, p sim.Params, x float64) Point {
	pt := Point{X: x, Results: make([]stats.Summary, len(schemes))}
	for i, s := range schemes {
		pt.Results[i] = c.cell(s, p, x)
	}
	return pt
}

// CSV renders the series: one row per sweep point, P and E columns per
// scheme.
func (s Series) CSV() string {
	var b strings.Builder
	b.WriteString(s.XLabel)
	for _, name := range s.Schemes {
		fmt.Fprintf(&b, ",%s_P,%s_E", name, name)
	}
	b.WriteString("\n")
	for _, pt := range s.Points {
		fmt.Fprintf(&b, "%g", pt.X)
		for _, r := range pt.Results {
			e := "NaN"
			if !math.IsNaN(r.E) {
				e = fmt.Sprintf("%.0f", r.E)
			}
			fmt.Fprintf(&b, ",%.4f,%s", r.P, e)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Crossover returns the first sweep X at which scheme a's P falls at or
// below scheme b's (by column label), or NaN if the curves never cross.
func (s Series) Crossover(a, b string) float64 {
	ia, ib := -1, -1
	for i, name := range s.Schemes {
		if name == a {
			ia = i
		}
		if name == b {
			ib = i
		}
	}
	if ia < 0 || ib < 0 {
		return math.NaN()
	}
	for _, pt := range s.Points {
		if pt.Results[ia].P <= pt.Results[ib].P {
			return pt.X
		}
	}
	return math.NaN()
}
