package sweep

import (
	"math"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

func baseConfig() Config {
	return Config{
		U: 0.78, UFreq: 1, Deadline: 10000, K: 5,
		Costs: checkpoint.SCPSetting(), Lambda: 0.0014,
		Reps: 300, Seed: 1,
	}
}

func twoSchemes() []sim.Scheme {
	return []sim.Scheme{core.NewADTDVS(), core.NewAdaptDVSSCP()}
}

func TestLambdaSweepShape(t *testing.T) {
	ser, err := Lambda(baseConfig(), []sim.Scheme{core.NewPoissonScheme(1)},
		[]float64{2e-4, 6e-4, 1e-3, 1.4e-3})
	if err != nil {
		t.Fatal(err)
	}
	if len(ser.Points) != 4 {
		t.Fatalf("points = %d", len(ser.Points))
	}
	// Fixed-speed baseline P must fall monotonically (within noise) as λ
	// grows.
	first := ser.Points[0].Results[0].P
	last := ser.Points[len(ser.Points)-1].Results[0].P
	if !(last < first) {
		t.Fatalf("P did not fall with λ: %v -> %v", first, last)
	}
}

func TestUtilizationSweepShape(t *testing.T) {
	ser, err := Utilization(baseConfig(), []sim.Scheme{core.NewPoissonScheme(1)},
		[]float64{0.60, 0.72, 0.80})
	if err != nil {
		t.Fatal(err)
	}
	first := ser.Points[0].Results[0].P
	last := ser.Points[2].Results[0].P
	if !(last < first) {
		t.Fatalf("P did not fall with U: %v -> %v", first, last)
	}
}

func TestCostRatioCrossover(t *testing.T) {
	// Sweep the store share: A_D_S should dominate at low store share
	// (cheap stores), A_D_C at high store share. Their P curves are both
	// ≈1 at these settings; use energy instead to find the flip.
	cfg := baseConfig()
	cfg.Reps = 400
	schemes := []sim.Scheme{core.NewAdaptDVSSCP(), core.NewAdaptDVSCCP()}
	ser, err := CostRatio(cfg, schemes, []float64{0.1, 0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	// At share 0.1 (≈ the paper's SCP setting) A_D_S must use less
	// energy; at 0.9 (≈ CCP setting) A_D_C must.
	low, high := ser.Points[0], ser.Points[2]
	if !(low.Results[0].E < low.Results[1].E) {
		t.Fatalf("store share 0.1: A_D_S E %v should beat A_D_C %v",
			low.Results[0].E, low.Results[1].E)
	}
	if !(high.Results[1].E < high.Results[0].E) {
		t.Fatalf("store share 0.9: A_D_C E %v should beat A_D_S %v",
			high.Results[1].E, high.Results[0].E)
	}
}

func TestCostRatioPreservesTotal(t *testing.T) {
	cfg := baseConfig()
	ser, err := CostRatio(cfg, []sim.Scheme{core.NewADTDVS()}, []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	_ = ser
	// Validation of bad shares.
	if _, err := CostRatio(cfg, twoSchemes(), []float64{1.5}); err == nil {
		t.Fatal("share > 1 accepted")
	}
}

func TestCSVRendering(t *testing.T) {
	ser, err := Lambda(baseConfig(), twoSchemes(), []float64{1e-3})
	if err != nil {
		t.Fatal(err)
	}
	csv := ser.CSV()
	if !strings.HasPrefix(csv, "lambda,A_D_P,A_D_E,A_D_S_P,A_D_S_E") {
		t.Fatalf("CSV header wrong: %q", strings.SplitN(csv, "\n", 2)[0])
	}
	if strings.Count(csv, "\n") != 2 {
		t.Fatalf("CSV should have header + 1 row:\n%s", csv)
	}
}

func TestCrossoverLookup(t *testing.T) {
	mk := func(x, pa, pb float64) Point {
		return Point{X: x, Results: []stats.Summary{{P: pa}, {P: pb}}}
	}
	ser := Series{
		Schemes: []string{"a", "b"},
		Points:  []Point{mk(1, 0.9, 0.5), mk(2, 0.7, 0.6), mk(3, 0.4, 0.6)},
	}
	if got := ser.Crossover("a", "b"); got != 3 {
		t.Fatalf("crossover = %v, want 3", got)
	}
	neverCross := Series{
		Schemes: []string{"a", "b"},
		Points:  []Point{mk(1, 0.9, 0.5)},
	}
	if got := neverCross.Crossover("a", "b"); !math.IsNaN(got) {
		t.Fatalf("no-cross = %v, want NaN", got)
	}
	if got := ser.Crossover("a", "zz"); !math.IsNaN(got) {
		t.Fatalf("unknown scheme = %v, want NaN", got)
	}
}
