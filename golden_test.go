package repro

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/rng"
	"repro/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/golden_sim.json from the current engine")

// goldenCase pins one (scheme, grid point, seed) trajectory of the
// simulation engine: the full Result plus a hash of the exact trace event
// sequence. The reference file was generated from the seed engine before
// the imperfect-fault-tolerance layer was added; the test guards that the
// extended engine reproduces the seed trajectories bit-for-bit when every
// imperfection knob sits at its ideal default.
type goldenCase struct {
	Scheme string  `json:"scheme"`
	U      float64 `json:"u"`
	Lambda float64 `json:"lambda"`
	Seed   uint64  `json:"seed"`

	Completed  bool   `json:"completed"`
	Reason     string `json:"reason"`
	TimeBits   uint64 `json:"time_bits"`
	EnergyBits uint64 `json:"energy_bits"`
	CyclesBits uint64 `json:"cycles_bits"`
	Faults     int    `json:"faults"`
	Detections int    `json:"detections"`
	CSCPs      int    `json:"cscps"`
	Subs       int    `json:"subs"`
	Switches   int    `json:"switches"`
	TraceHash  uint64 `json:"trace_hash"`
	TraceLen   int    `json:"trace_len"`
}

func goldenSchemes() []sim.Scheme {
	return []sim.Scheme{
		core.NewPoissonScheme(1),
		core.NewKFTScheme(1),
		core.NewADTDVS(),
		core.NewAdaptDVSSCP(),
		core.NewAdaptDVSCCP(),
	}
}

// traceHash digests the trace event sequence exactly: kind, float bits of
// time and value, and checkpoint flavour all participate.
func traceHash(tr *sim.Trace) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	for _, ev := range tr.Events {
		mix(uint64(ev.Kind))
		mix(math.Float64bits(ev.Time))
		mix(uint64(ev.Checkpoint))
		mix(math.Float64bits(ev.Value))
	}
	return h
}

// goldenGrid spans both cost settings and a fault-free point so every
// engine path (SCP flavour, CCP flavour, DVS recovery, zero-λ) is pinned.
func goldenGrid() []struct{ U, Lambda float64 } {
	return []struct{ U, Lambda float64 }{
		{0.78, 0.0014},
		{0.82, 0.0016},
		{0.78, 0},
	}
}

func runGoldenCase(t *testing.T, s sim.Scheme, u, lambda float64, seed uint64, imp *fault.Imperfection) goldenCase {
	t.Helper()
	tk, err := TaskFromUtilization("golden", u, 1, 10000, 5)
	if err != nil {
		t.Fatal(err)
	}
	costs := SCPCosts()
	if s.Name() == "A_D_C" {
		costs = CCPCosts()
	}
	tr := &sim.Trace{}
	p := sim.Params{Task: tk, Costs: costs, Lambda: lambda, Trace: tr, Imperfect: imp}
	res := s.Run(p, rng.New(seed))
	return goldenCase{
		Scheme: s.Name(), U: u, Lambda: lambda, Seed: seed,
		Completed: res.Completed, Reason: string(res.Reason),
		TimeBits:   math.Float64bits(res.Time),
		EnergyBits: math.Float64bits(res.Energy),
		CyclesBits: math.Float64bits(res.Cycles),
		Faults:     res.Faults, Detections: res.Detections,
		CSCPs: res.CSCPs, Subs: res.SubCheckpoints, Switches: res.Switches,
		TraceHash: traceHash(tr), TraceLen: len(tr.Events),
	}
}

const goldenPath = "testdata/golden_sim.json"

// TestGoldenEquivalence replays the recorded seed-engine trajectories and
// demands bit-identical results from the current engine, both with the
// imperfection layer absent (nil) and with every knob explicitly at its
// ideal value — the default-equivalence guarantee of the imperfect-FT
// extension.
func TestGoldenEquivalence(t *testing.T) {
	var cases []goldenCase
	for _, s := range goldenSchemes() {
		for _, g := range goldenGrid() {
			for seed := uint64(1); seed <= 4; seed++ {
				cases = append(cases, runGoldenCase(t, s, g.U, g.Lambda, seed, nil))
			}
		}
	}

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		blob, err := json.MarshalIndent(cases, "", " ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden cases to %s", len(cases), goldenPath)
		return
	}

	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to regenerate): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(cases) {
		t.Fatalf("golden file has %d cases, engine produced %d", len(want), len(cases))
	}
	for i, w := range want {
		if cases[i] != w {
			t.Errorf("nil-imperfection trajectory diverged from seed engine:\n got %+v\nwant %+v", cases[i], w)
		}
	}

	// Explicit ideal knobs must follow the identical code path: same
	// trajectories, same trace hashes, zero extra randomness consumed.
	ideal := fault.IdealFT()
	i := 0
	for _, s := range goldenSchemes() {
		for _, g := range goldenGrid() {
			for seed := uint64(1); seed <= 4; seed++ {
				got := runGoldenCase(t, s, g.U, g.Lambda, seed, &ideal)
				if got != want[i] {
					t.Errorf("explicit-ideal trajectory diverged from seed engine:\n got %+v\nwant %+v", got, want[i])
				}
				i++
			}
		}
	}
}

// TestGoldenFileFresh fails loudly if the golden file predates a grid or
// scheme-set change, rather than silently comparing misaligned cases.
func TestGoldenFileFresh(t *testing.T) {
	blob, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Skip("golden file not generated yet")
	}
	var want []goldenCase
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	wantN := len(goldenSchemes()) * len(goldenGrid()) * 4
	if len(want) != wantN {
		t.Fatalf("golden file holds %d cases, current grid needs %d — regenerate with -update", len(want), wantN)
	}
	seen := map[string]bool{}
	for _, w := range want {
		seen[w.Scheme] = true
	}
	for _, s := range goldenSchemes() {
		if !seen[s.Name()] {
			t.Errorf("golden file missing scheme %s", s.Name())
		}
	}
}
