// Command chksim simulates one checkpointing configuration: a task
// defined by utilisation/deadline/fault budget, a cost model, a fault
// rate and a scheme, over any number of repetitions. With -trace it
// prints the full execution timeline of a single run (the executable
// analogue of the paper's Figs. 1 and 5).
//
// Usage:
//
//	chksim -scheme A_D_S -u 0.78 -lambda 0.0014 -k 5 -reps 10000
//	chksim -scheme A_D_C -setting ccp -u 0.95 -lambda 1e-4 -k 1
//	chksim -scheme Poisson -freq 2 -u 0.76 -lambda 0.0014 -trace
//
// Exit codes: 0 on success, 1 on a runtime failure, 2 on a flag value
// the command cannot act on.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/analysis"
	"repro/internal/checkpoint"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/tmr"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("chksim: ")
	if err := run(); err != nil {
		log.Print(err)
		os.Exit(cli.ExitCode(err))
	}
}

func run() error {
	var (
		schemeName = flag.String("scheme", "A_D_S", "scheme: Poisson | k-f-t | A_D | A_D_S | A_D_C | adapchp-SCP | adapchp-CCP | TMR")
		setting    = flag.String("setting", "scp", "cost setting: scp (ts=2,tcp=20) or ccp (ts=20,tcp=2)")
		u          = flag.Float64("u", 0.78, "task utilisation U = N/(f·D)")
		uFreq      = flag.Float64("ufreq", 1, "speed the utilisation is computed against")
		deadline   = flag.Float64("deadline", 10000, "deadline D in minimum-speed cycles")
		lambda     = flag.Float64("lambda", 0.0014, "fault arrival rate λ")
		k          = flag.Int("k", 5, "fault budget k")
		freq       = flag.Float64("freq", 1, "operating frequency for fixed-speed schemes")
		reps       = flag.Int("reps", 10000, "Monte-Carlo repetitions")
		seed       = flag.Uint64("seed", 1, "base seed")
		trace      = flag.Bool("trace", false, "print the event timeline of a single run")
		analytic   = flag.Bool("analytic", false, "also print the Young/Daly analytic optimal checkpoint intervals for this (cost, λ) point")
	)
	showVersion := cli.VersionFlag()
	flag.Parse()
	if showVersion() {
		return nil
	}

	var costs checkpoint.Costs
	switch *setting {
	case "scp":
		costs = checkpoint.SCPSetting()
	case "ccp":
		costs = checkpoint.CCPSetting()
	default:
		return cli.Usagef("unknown -setting %q (want scp or ccp)", *setting)
	}

	var scheme sim.Scheme
	switch *schemeName {
	case "Poisson":
		scheme = core.NewPoissonScheme(*freq)
	case "k-f-t":
		scheme = core.NewKFTScheme(*freq)
	case "A_D":
		scheme = core.NewADTDVS()
	case "A_D_S":
		scheme = core.NewAdaptDVSSCP()
	case "A_D_C":
		scheme = core.NewAdaptDVSCCP()
	case "adapchp-SCP":
		scheme = core.NewAdaptSCP(*freq)
	case "adapchp-CCP":
		scheme = core.NewAdaptCCP(*freq)
	case "TMR":
		scheme = tmr.New(*freq)
	default:
		return cli.Usagef("unknown -scheme %q", *schemeName)
	}

	tk, err := task.FromUtilization("cli", *u, *uFreq, *deadline, *k)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	params := sim.Params{Task: tk, Costs: costs, Lambda: *lambda}
	if err := params.Validate(); err != nil {
		return cli.Usagef("%v", err)
	}

	if *trace {
		tr := &sim.Trace{}
		params.Trace = tr
		r := scheme.Run(params, rng.New(*seed))
		fmt.Println(tr.Timeline(100))
		fmt.Println()
		fmt.Print(tr.String())
		fmt.Printf("\ncompleted=%v reason=%q time=%.1f energy=%.0f faults=%d detections=%d cscps=%d subs=%d switches=%d\n",
			r.Completed, r.Reason, r.Time, r.Energy, r.Faults, r.Detections, r.CSCPs, r.SubCheckpoints, r.Switches)
		return nil
	}

	// One run context for the whole repetition loop: engine and plan
	// caches are reused; per-rep seeds are the counter-based rng.Stream
	// family, matching the experiment runner's derivation.
	rctx := sim.NewRunContext()
	var cell stats.Cell
	for i := 0; i < *reps; i++ {
		r := sim.RunScheme(rctx, scheme, params, rctx.Reseed(rng.Stream(*seed, i)))
		cell.Observe(r.Completed, r.Energy, r.Time, float64(r.Faults), float64(r.Switches))
	}
	s := cell.Summary()
	fmt.Printf("scheme=%s N=%.0f D=%.0f k=%d λ=%g reps=%d\n",
		scheme.Name(), tk.Cycles, tk.Deadline, *k, *lambda, *reps)
	fmt.Printf("P = %.4f ± %.4f\n", s.P, s.PCI)
	fmt.Printf("E = %.0f ± %.0f (over timely completions)\n", s.E, s.ECI)
	fmt.Printf("mean faults/run = %.2f, mean speed switches/run = %.2f\n", s.MeanFaults, s.MeanSwitches)
	if *analytic {
		// The classical single-level comparators, evaluated at the full
		// CSCP cost (ts+tcp). The simulated schemes optimise a richer
		// DMR-specific model, so these bracket rather than match — a wild
		// disagreement flags a modelling bug on one side.
		ai, aerr := analysis.Intervals(costs.CSCPCycles(), *lambda)
		if aerr != nil {
			return cli.Usagef("%v", aerr)
		}
		fmt.Printf("analytic: MTBF=%.0f τ_Young=%.1f τ_Daly=%.1f (c=ts+tcp=%.0f)\n",
			ai.MTBF, ai.Young, ai.Daly, costs.CSCPCycles())
	}
	return nil
}
