// Command degrade compares the paper's checkpointing schemes over a
// long-horizon mission when fault tolerance is itself imperfect: error
// detection has coverage below one, stored checkpoints can be latently
// corrupted (discovered only when a rollback cascades through them),
// checkpoint operations are exposed to fault arrivals, and permanent
// faults degrade the platform from DMR to simplex — then kill it.
//
// For every point of the coverage × permanent-rate sweep it prints one
// table with frames flown, deadline misses, silently wrong frames,
// degraded (simplex) frames, energy per frame and the end condition per
// scheme. Under ideal knobs (-coverage 1 -corrupt 0 -vulnerable=false
// -permanent 0) the engine follows the paper's model exactly.
//
// Usage:
//
//	degrade                                     # defaults: mild imperfection sweep
//	degrade -coverage 1,0.98,0.9 -corrupt 0.08
//	degrade -permanent 0,2e-7 -frames 20000
//	degrade -vulnerable=false -corrupt 0.2
//	degrade -trace-out m.jsonl                  # record mission trace events
//
// Exit codes: 0 on success, 1 on a runtime failure, 2 on a flag value
// the command cannot act on.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mission"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/telemetry"
)

// parseList splits a comma-separated flag into floats.
func parseList(name, s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, cli.Usagef("bad -%s entry %q: %v", name, part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("degrade: ")
	if err := run(); err != nil {
		log.Print(err)
		os.Exit(cli.ExitCode(err))
	}
}

func run() error {
	var (
		u          = flag.Float64("u", 0.78, "frame utilisation U = N/(f1·D)")
		lambda     = flag.Float64("lambda", 0.0014, "transient fault rate")
		k          = flag.Int("k", 5, "fault budget per frame")
		setting    = flag.String("setting", "scp", "cost setting: scp or ccp")
		capacity   = flag.Float64("battery", 3e8, "battery capacity (V²·cycles)")
		frames     = flag.Int("frames", 10000, "frame budget")
		coverages  = flag.String("coverage", "1,0.95", "comma-separated detection coverage values")
		corrupt    = flag.Float64("corrupt", 0.08, "probability a stored checkpoint is latently corrupted")
		vulnerable = flag.Bool("vulnerable", true, "expose checkpoint operations to fault arrivals")
		budget     = flag.Int("cascade", 0, "rollback cascade budget (0 = default)")
		permanents = flag.String("permanent", "0,2e-7", "comma-separated permanent-fault rates (per cycle)")
		seed       = flag.Uint64("seed", 1, "base seed")
		traceOut   = flag.String("trace-out", "", "write mission run-trace events (JSONL) to this file")
	)
	showVersion := cli.VersionFlag()
	flag.Parse()
	if showVersion() {
		return nil
	}

	// -trace-out records mission lifecycle events (start / milestone /
	// degraded / end) through the engine sink; tracing never alters the
	// missions themselves.
	var sink telemetry.Sink
	if *traceOut != "" {
		tracer := telemetry.NewTracer(0)
		sink = telemetry.NewRegistrySink(nil, tracer)
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				log.Printf("trace-out: %v", err)
				return
			}
			defer f.Close()
			if err := tracer.WriteJSONL(f, 0); err != nil {
				log.Printf("trace-out: %v", err)
			}
		}()
	}

	costs := checkpoint.SCPSetting()
	if *setting == "ccp" {
		costs = checkpoint.CCPSetting()
	} else if *setting != "scp" {
		return cli.Usagef("unknown -setting %q", *setting)
	}

	tk, err := task.FromUtilization("frame", *u, 1, 10000, *k)
	if err != nil {
		return cli.Usagef("%v", err)
	}
	covList, err := parseList("coverage", *coverages)
	if err != nil {
		return err
	}
	permList, err := parseList("permanent", *permanents)
	if err != nil {
		return err
	}

	schemes := []sim.Scheme{
		core.NewPoissonScheme(1),
		core.NewKFTScheme(1),
		core.NewADTDVS(),
		core.NewAdaptDVSSCP(),
		core.NewAdaptDVSCCP(),
	}

	fmt.Printf("frame: N=%.0f D=%.0f k=%d λ=%g (%s setting)\n", tk.Cycles, tk.Deadline, *k, *lambda, *setting)
	fmt.Printf("imperfection: corrupt=%.3g vulnerable=%v; battery %.3g, budget %d frames\n",
		*corrupt, *vulnerable, *capacity, *frames)

	for _, cov := range covList {
		for _, perm := range permList {
			im := fault.Imperfection{
				Coverage:             cov,
				StoreCorruption:      *corrupt,
				CheckpointVulnerable: *vulnerable,
				CascadeBudget:        *budget,
			}
			frame := sim.Params{Task: tk, Costs: costs, Lambda: *lambda, Imperfect: &im}
			cfg := mission.Config{
				Frame:           frame,
				BatteryCapacity: *capacity,
				MaxFrames:       *frames,
				PermanentLambda: perm,
				Sink:            sink,
			}
			fmt.Printf("\n--- coverage=%g permanent=%g ---\n", cov, perm)
			fmt.Println("scheme            frames   misses    wrong degraded  E/frame   end")
			reports, err := mission.Compare(cfg, schemes, *seed)
			if err != nil {
				return err
			}
			for i, r := range reports {
				fmt.Printf("%-16s  %6d   %6d   %6d   %6d  %8.0f  %s\n",
					schemes[i].Name(), r.Frames, r.Misses, r.WrongFrames,
					r.DegradedFrames, r.FrameEnergy.E, r.Reason)
			}
		}
	}
	return nil
}
