// Command simbench times the Monte-Carlo simulation stack end to end
// and writes the measurements to a JSON file (BENCH_simstack.json by
// default), so performance changes to the sim → core → experiment stack
// leave a comparable artefact in the repository history.
//
// Three workloads are timed:
//
//   - Table1a, Table3a: one full published sub-table grid through the
//     experiment runner — the run-context path with warm engines and
//     plan caches, exactly what `make tables` pays per table. Reported
//     per repetition (ns/rep, allocs/rep, reps/sec), and swept across
//     the -cpu list: each point pins GOMAXPROCS and the runner's worker
//     count to n and reports reps_per_sec plus speedup_vs_1cpu, the
//     scaling curve of the work-stealing rep-shard scheduler. Results
//     are bit-identical at every width, so the sweep measures pure
//     scheduling.
//   - SingleRunCtx: one execution of the headline scheme (A_D_S at the
//     paper's anchor cell) through a reused RunContext — the simulator's
//     warm inner-loop cost. Inherently serial; not swept.
//   - ReseedBatch, SpanWalk: kernel sub-components — the batched
//     per-repetition seed-stream setup and the structure-of-arrays
//     arrival span walk — so a regression inside the batch kernel is
//     attributable from the artefact alone. Reported per repetition
//     and per span respectively; serial, not swept.
//
// Sweep widths above the schedulable CPU count are skipped outright
// (never recorded): on an undersized host they would measure scheduler
// contention, not scaling.
//
// The previous report is not thrown away: its summary (sans its own
// history) is appended to the new file's "history" array, so the
// committed artefact carries the performance trend, not just the latest
// point.
//
// Usage:
//
//	go run ./cmd/simbench [-out BENCH_simstack.json] [-reps 50]
//	                      [-cpu 1,2,4] [-short] [-check] [-baseline file]
//
// -short cuts the per-benchmark measuring time for CI smoke runs.
// -check compares the fresh single-CPU ns_per_rep of each workload
// against the baseline file (default: the committed BENCH_simstack.json)
// and exits non-zero if any regressed more than 15%.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/task"
)

// cpuPoint is one width of a workload's scaling sweep. CPULimited
// flags a width that oversubscribes the machine (GOMAXPROCS above the
// schedulable CPU count): its speedup measures contention, not
// scaling, and consumers must not read it as a scaling regression.
type cpuPoint struct {
	NumCPU        int     `json:"num_cpu"`
	NsPerRep      float64 `json:"ns_per_rep"`
	RepsPerSec    float64 `json:"reps_per_sec"`
	SpeedupVs1CPU float64 `json:"speedup_vs_1cpu,omitempty"`
	// ParallelEfficiency is speedup divided by the width — 1.0 is
	// perfect scaling.
	ParallelEfficiency float64 `json:"parallel_efficiency,omitempty"`
	CPULimited         bool    `json:"cpu_limited,omitempty"`
}

// measurement is one timed workload, normalised per simulation rep. The
// scalar fields are the first sweep width (1 CPU by default) — the
// number -check and the history trend compare; CPUs carries the full
// sweep for the grid workloads.
type measurement struct {
	Name         string  `json:"name"`
	RepsPerOp    int     `json:"reps_per_op"`
	NsPerRep     float64 `json:"ns_per_rep"`
	AllocsPerRep float64 `json:"allocs_per_rep"`
	BytesPerRep  float64 `json:"bytes_per_rep"`
	RepsPerSec   float64 `json:"reps_per_sec"`
	// ShardSize is the repetitions-per-shard unit the grid workloads
	// ran with — the batch width of the structure-of-arrays kernel —
	// recorded so entries with different batching stay comparable.
	// Zero for unsharded workloads (SingleRunCtx).
	ShardSize int        `json:"shard_size,omitempty"`
	CPUs      []cpuPoint `json:"cpus,omitempty"`
}

// report is the file schema. History holds previous reports, oldest
// first, each with its own History stripped.
type report struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	NumCPU      int           `json:"num_cpu"`
	Reps        int           `json:"reps_per_cell"`
	Short       bool          `json:"short"`
	CPUList     []int         `json:"cpu_list,omitempty"`
	Benchmarks  []measurement `json:"benchmarks"`
	History     []report      `json:"history,omitempty"`
}

// historyCap bounds the trend the artefact accumulates.
const historyCap = 20

// regressionTolerance is the relative ns_per_rep growth -check accepts.
const regressionTolerance = 0.15

func main() {
	testing.Init() // registers -test.* flags so benchtime is settable
	out := flag.String("out", "BENCH_simstack.json", "output file path")
	reps := flag.Int("reps", 50, "Monte-Carlo repetitions per table cell")
	cpuList := flag.String("cpu", "1,2,4", "comma-separated GOMAXPROCS sweep for the grid workloads")
	short := flag.Bool("short", false, "cut measuring time (CI smoke)")
	check := flag.Bool("check", false, "fail if ns_per_rep regressed >15% vs the baseline file")
	baseline := flag.String("baseline", "", "baseline file for -check (default: the -out file's previous content)")
	showVersion := cli.VersionFlag()
	flag.Parse()
	if showVersion() {
		return
	}

	cpus, err := parseCPUList(*cpuList)
	if err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(2)
	}
	// The default sweep assumes a multi-core host; on a smaller machine
	// (1-core CI containers) an oversubscribed width measures scheduler
	// contention, not scaling — a "4 cpu" row with speedup ≈ 0.97 is
	// noise that poisons the artefact's trend. Such widths are skipped
	// outright (with a notice), never recorded, even when -cpu names
	// them explicitly.
	kept := cpus[:0]
	for _, n := range cpus {
		if n > runtime.NumCPU() {
			fmt.Fprintf(os.Stderr, "simbench: skipping %d-cpu sweep (host schedules %d)\n", n, runtime.NumCPU())
			continue
		}
		kept = append(kept, n)
	}
	cpus = kept
	if len(cpus) == 0 {
		cpus = append(cpus, 1)
	}

	if *short {
		// testing.Benchmark honours the -test.benchtime flag value.
		if f := flag.Lookup("test.benchtime"); f != nil {
			f.Value.Set("0.2s")
		}
	}

	// The previous committed report is both the -check baseline and the
	// next history entry.
	baselinePath := *baseline
	if baselinePath == "" {
		baselinePath = *out
	}
	prev, prevErr := readReport(baselinePath)

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Reps:        *reps,
		Short:       *short,
		CPUList:     cpus,
	}
	for _, id := range []string{"1a", "3a"} {
		m, err := benchTable(id, *reps, cpus)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: table %s: %v\n", id, err)
			os.Exit(1)
		}
		rep.Benchmarks = append(rep.Benchmarks, m)
		printMeasurement(m)
	}
	for _, m := range []measurement{benchSingleRunCtx(), benchReseedBatch(), benchSpanWalk()} {
		rep.Benchmarks = append(rep.Benchmarks, m)
		printMeasurement(m)
	}

	// Append, never overwrite: the old report joins the trend.
	if prevErr == nil {
		hist := prev.History
		prev.History = nil
		rep.History = append(hist, prev)
		if len(rep.History) > historyCap {
			rep.History = rep.History[len(rep.History)-historyCap:]
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if *check {
		if prevErr != nil {
			fmt.Fprintf(os.Stderr, "simbench: -check: no baseline (%v); treating as pass\n", prevErr)
			return
		}
		if failures := checkRegressions(prev, rep); len(failures) > 0 {
			for _, f := range failures {
				fmt.Fprintf(os.Stderr, "simbench: REGRESSION %s\n", f)
			}
			os.Exit(1)
		}
		fmt.Printf("bench-check: ok (within %.0f%% of %s)\n", regressionTolerance*100, baselinePath)
	}
}

func parseCPUList(s string) ([]int, error) {
	var cpus []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -cpu entry %q (want positive integers)", part)
		}
		cpus = append(cpus, n)
	}
	if len(cpus) == 0 {
		return nil, fmt.Errorf("empty -cpu list")
	}
	return cpus, nil
}

func readReport(path string) (report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return report{}, err
	}
	var r report
	if err := json.Unmarshal(buf, &r); err != nil {
		return report{}, fmt.Errorf("%s: %v", path, err)
	}
	return r, nil
}

// checkRegressions compares same-name workloads' scalar ns_per_rep
// (the first sweep width) between the baseline and the fresh run.
// Baselines whose headline width was oversubscribed (cpu_limited —
// recorded by versions that still emitted such rows) measured
// contention, not the kernel, and are ignored.
func checkRegressions(old, fresh report) []string {
	byName := map[string]measurement{}
	for _, m := range old.Benchmarks {
		byName[m.Name] = m
	}
	var failures []string
	for _, m := range fresh.Benchmarks {
		o, ok := byName[m.Name]
		if !ok || o.NsPerRep <= 0 {
			continue
		}
		if len(o.CPUs) > 0 && o.CPUs[0].CPULimited {
			continue
		}
		if m.NsPerRep > o.NsPerRep*(1+regressionTolerance) {
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/rep vs baseline %.0f (+%.1f%%, tolerance %.0f%%)",
				m.Name, m.NsPerRep, o.NsPerRep,
				100*(m.NsPerRep/o.NsPerRep-1), regressionTolerance*100))
		}
	}
	return failures
}

func printMeasurement(m measurement) {
	fmt.Printf("%-12s %10.0f ns/rep %8.1f allocs/rep %12.0f reps/sec\n",
		m.Name, m.NsPerRep, m.AllocsPerRep, m.RepsPerSec)
	for _, p := range m.CPUs {
		limited := ""
		if p.CPULimited {
			limited = "  (cpu-limited)"
		}
		fmt.Printf("  %2d cpu  %12.0f reps/sec  %5.2fx vs 1 cpu  eff %4.2f%s\n",
			p.NumCPU, p.RepsPerSec, p.SpeedupVs1CPU, p.ParallelEfficiency, limited)
	}
}

// benchTable times one full sub-table grid per op at each sweep width
// and normalises by the total repetition count the grid runs.
func benchTable(id string, reps int, cpus []int) (measurement, error) {
	spec, err := experiment.TableByID(id)
	if err != nil {
		return measurement{}, err
	}

	// One warm-up run, which also counts the trials per op.
	tbl, err := experiment.Runner{Reps: reps, Seed: 1, Workers: 1}.RunTable(spec)
	if err != nil {
		return measurement{}, err
	}
	total := 0
	for _, row := range tbl.Rows {
		for _, c := range row.Cells {
			total += c.Summary.Trials
		}
	}

	var m measurement
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)
	for i, n := range cpus {
		runtime.GOMAXPROCS(n)
		runner := experiment.Runner{Reps: reps, Seed: 1, Workers: n}
		br := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := runner.RunTable(spec); err != nil {
					b.Fatal(err)
				}
			}
		})
		point := normalise("Table"+id, br, total)
		if i == 0 {
			m = point
			m.ShardSize = experiment.DefaultShardSize
		}
		pt := cpuPoint{
			NumCPU:     n,
			NsPerRep:   point.NsPerRep,
			RepsPerSec: point.RepsPerSec,
			CPULimited: n > runtime.NumCPU(),
		}
		if base := m.RepsPerSec; base > 0 {
			pt.SpeedupVs1CPU = point.RepsPerSec / base
			pt.ParallelEfficiency = pt.SpeedupVs1CPU / float64(n)
		}
		m.CPUs = append(m.CPUs, pt)
	}
	return m, nil
}

// benchSingleRunCtx times the warm context path of one A_D_S execution
// at the paper's anchor cell (U = 0.78, λ = 0.0014, k = 5).
func benchSingleRunCtx() measurement {
	tk, _ := task.FromUtilization("bench", 0.78, 1, 10000, 5)
	p := sim.Params{Task: tk, Costs: checkpoint.SCPSetting(), Lambda: 0.0014}
	s := core.NewAdaptDVSSCP()
	rctx := sim.NewRunContext()
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = sim.RunScheme(rctx, s, p, rctx.Reseed(uint64(i)+1))
		}
	})
	return normalise("SingleRunCtx", br, 1)
}

// benchReseedBatch times the batched seed-stream setup a shard pays
// before its kernel runs — bulk counter-based stream derivation, the
// one-pass generator-state materialisation and the per-repetition
// state installs — normalised per repetition. Mirrors
// core.BenchmarkReseedBatch.
func benchReseedBatch() measurement {
	const batch = 128
	bctx := sim.NewBatchContext()
	bctx.Grow(batch)
	src := bctx.Source()
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rng.StreamBatch(42, i*batch, bctx.Seeds[:batch])
			bctx.States.Reseed(bctx.Seeds[:batch])
			for j := 0; j < batch; j++ {
				bctx.States.Load(src, j)
			}
		}
	})
	return normalise("ReseedBatch", br, batch)
}

// benchSpanWalk times the kernels' structure-of-arrays arrival
// consumption — the straight-line walk counting the fault arrivals in
// each checkpoint span by index arithmetic — normalised per span.
// Mirrors core.BenchmarkArrivalSpanWalk.
func benchSpanWalk() measurement {
	const (
		spans  = 4096
		span   = 0.05
		lambda = 0.0014
	)
	bctx := sim.NewBatchContext()
	arr := bctx.Arrivals()
	faults := 0
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			arr.Reset(lambda, rng.New(uint64(i)+1), 64)
			times := arr.Times()
			x, pos := 0.0, 0
			for s := 0; s < spans; s++ {
				end := x + span
				if times[len(times)-1] < end {
					times = arr.EnsureBeyond(end)
				}
				p0 := pos
				for times[pos] < end {
					pos++
				}
				faults += pos - p0
				x = end
			}
		}
	})
	_ = faults
	return normalise("SpanWalk", br, spans)
}

func normalise(name string, br testing.BenchmarkResult, repsPerOp int) measurement {
	nsPerOp := float64(br.NsPerOp())
	return measurement{
		Name:         name,
		RepsPerOp:    repsPerOp,
		NsPerRep:     nsPerOp / float64(repsPerOp),
		AllocsPerRep: float64(br.AllocsPerOp()) / float64(repsPerOp),
		BytesPerRep:  float64(br.AllocedBytesPerOp()) / float64(repsPerOp),
		RepsPerSec:   float64(repsPerOp) / (nsPerOp * 1e-9),
	}
}
