// Command simbench times the Monte-Carlo simulation stack end to end
// and writes the measurements to a JSON file (BENCH_simstack.json by
// default), so performance changes to the sim → core → experiment stack
// leave a comparable artefact in the repository history.
//
// Three workloads are timed:
//
//   - Table1a, Table3a: one full published sub-table grid through the
//     experiment runner on a single worker — the run-context path with
//     warm engines and plan caches, exactly what `make tables` pays per
//     table. Reported per repetition (ns/rep, allocs/rep, reps/sec).
//   - SingleRunCtx: one execution of the headline scheme (A_D_S at the
//     paper's anchor cell) through a reused RunContext — the simulator's
//     warm inner-loop cost.
//
// Usage:
//
//	go run ./cmd/simbench [-out BENCH_simstack.json] [-reps 50] [-short]
//
// -short cuts the per-benchmark measuring time for CI smoke runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/sim"
	"repro/internal/task"
)

// measurement is one timed workload, normalised per simulation rep.
type measurement struct {
	Name         string  `json:"name"`
	RepsPerOp    int     `json:"reps_per_op"`
	NsPerRep     float64 `json:"ns_per_rep"`
	AllocsPerRep float64 `json:"allocs_per_rep"`
	BytesPerRep  float64 `json:"bytes_per_rep"`
	RepsPerSec   float64 `json:"reps_per_sec"`
}

// report is the file schema.
type report struct {
	GeneratedAt string        `json:"generated_at"`
	GoVersion   string        `json:"go_version"`
	GOOS        string        `json:"goos"`
	GOARCH      string        `json:"goarch"`
	NumCPU      int           `json:"num_cpu"`
	Reps        int           `json:"reps_per_cell"`
	Short       bool          `json:"short"`
	Benchmarks  []measurement `json:"benchmarks"`
}

func main() {
	testing.Init() // registers -test.* flags so benchtime is settable
	out := flag.String("out", "BENCH_simstack.json", "output file path")
	reps := flag.Int("reps", 50, "Monte-Carlo repetitions per table cell")
	short := flag.Bool("short", false, "cut measuring time (CI smoke)")
	showVersion := cli.VersionFlag()
	flag.Parse()
	if showVersion() {
		return
	}

	if *short {
		// testing.Benchmark honours the -test.benchtime flag value.
		if f := flag.Lookup("test.benchtime"); f != nil {
			f.Value.Set("0.2s")
		}
	}

	rep := report{
		GeneratedAt: time.Now().UTC().Format(time.RFC3339),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		NumCPU:      runtime.NumCPU(),
		Reps:        *reps,
		Short:       *short,
	}
	for _, id := range []string{"1a", "3a"} {
		m, err := benchTable(id, *reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simbench: table %s: %v\n", id, err)
			os.Exit(1)
		}
		rep.Benchmarks = append(rep.Benchmarks, m)
		fmt.Printf("%-12s %10.0f ns/rep %8.1f allocs/rep %12.0f reps/sec\n",
			m.Name, m.NsPerRep, m.AllocsPerRep, m.RepsPerSec)
	}
	m := benchSingleRunCtx()
	rep.Benchmarks = append(rep.Benchmarks, m)
	fmt.Printf("%-12s %10.0f ns/rep %8.1f allocs/rep %12.0f reps/sec\n",
		m.Name, m.NsPerRep, m.AllocsPerRep, m.RepsPerSec)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "simbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}

// benchTable times one full sub-table grid per op and normalises by the
// total repetition count the grid runs.
func benchTable(id string, reps int) (measurement, error) {
	spec, err := experiment.TableByID(id)
	if err != nil {
		return measurement{}, err
	}
	runner := experiment.Runner{Reps: reps, Seed: 1, Workers: 1}

	// One warm-up run, which also counts the trials per op.
	tbl, err := runner.RunTable(spec)
	if err != nil {
		return measurement{}, err
	}
	total := 0
	for _, row := range tbl.Rows {
		for _, c := range row.Cells {
			total += c.Summary.Trials
		}
	}

	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := runner.RunTable(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	return normalise("Table"+id, br, total), nil
}

// benchSingleRunCtx times the warm context path of one A_D_S execution
// at the paper's anchor cell (U = 0.78, λ = 0.0014, k = 5).
func benchSingleRunCtx() measurement {
	tk, _ := task.FromUtilization("bench", 0.78, 1, 10000, 5)
	p := sim.Params{Task: tk, Costs: checkpoint.SCPSetting(), Lambda: 0.0014}
	s := core.NewAdaptDVSSCP()
	rctx := sim.NewRunContext()
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = sim.RunScheme(rctx, s, p, rctx.Reseed(uint64(i)+1))
		}
	})
	return normalise("SingleRunCtx", br, 1)
}

func normalise(name string, br testing.BenchmarkResult, repsPerOp int) measurement {
	nsPerOp := float64(br.NsPerOp())
	return measurement{
		Name:         name,
		RepsPerOp:    repsPerOp,
		NsPerRep:     nsPerOp / float64(repsPerOp),
		AllocsPerRep: float64(br.AllocsPerOp()) / float64(repsPerOp),
		BytesPerRep:  float64(br.AllocedBytesPerOp()) / float64(repsPerOp),
		RepsPerSec:   float64(repsPerOp) / (nsPerOp * 1e-9),
	}
}
