// Command isarun assembles a program for the bundled RISC-style ISA and
// executes it on a DMR replica pair under checkpointing with bit-flip
// fault injection, printing the recovery statistics. It demonstrates the
// mechanism the statistical simulator costs out: real state stores,
// comparisons and rollbacks.
//
// Usage:
//
//	isarun -file prog.asm -lambda 0.002 -interval 200 -m 4 -sub scp
//	isarun -demo           # run the built-in demo program
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/checkpoint"
	"repro/internal/cli"
	"repro/internal/dmr"
	"repro/internal/isa"
	"repro/internal/isa/programs"
	"repro/internal/rng"
)

const demoProgram = `
    ; compute 100 * 37 by repeated addition, journalling partial sums
    ldi  r1, 100
    ldi  r2, 0
    ldi  r3, 37
    ldi  r5, 0
loop:
    add  r2, r2, r3
    st   r2, 0(r5)
    addi r5, r5, 1
    ldi  r7, 31
    blt  r5, r7, ok
    ldi  r5, 0
ok:
    addi r1, r1, -1
    bne  r1, r0, loop
    halt
`

func main() {
	log.SetFlags(0)
	log.SetPrefix("isarun: ")

	var (
		file     = flag.String("file", "", "assembler source file")
		demo     = flag.Bool("demo", false, "run the built-in demo program")
		kernel   = flag.String("kernel", "", "canned kernel: bubblesort | insertionsort | dotproduct | checksum | movingavg | matvec3 | pid")
		mem      = flag.Int("mem", 32, "data memory words")
		interval = flag.Uint64("interval", 200, "CSCP interval in instructions")
		m        = flag.Int("m", 4, "sub-intervals per CSCP interval")
		sub      = flag.String("sub", "scp", "additional checkpoint kind: scp or ccp")
		lambda   = flag.Float64("lambda", 0.002, "fault rate per instruction")
		deadline = flag.Uint64("deadline", 0, "deadline in cycles (0 = none)")
		seed     = flag.Uint64("seed", 1, "rng seed")
		runs     = flag.Int("runs", 1, "number of independent runs")
	)
	showVersion := cli.VersionFlag()
	flag.Parse()
	if showVersion() {
		return
	}

	var src string
	switch {
	case *kernel != "":
		k, err := programs.ByName(*kernel)
		if err != nil {
			log.Fatal(err)
		}
		src = k.Source
		if k.MemWords > *mem {
			*mem = k.MemWords
		}
	case *demo && *file == "":
		src = demoProgram
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			log.Fatal(err)
		}
		src = string(data)
	default:
		log.Fatal("need -file, -kernel or -demo")
	}

	prog, err := isa.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}

	kind := checkpoint.SCP
	if *sub == "ccp" {
		kind = checkpoint.CCP
	} else if *sub != "scp" {
		log.Fatalf("unknown -sub %q", *sub)
	}

	cfg := dmr.Config{
		Prog:           prog,
		MemWords:       *mem,
		DeadlineCycles: *deadline,
		IntervalCycles: *interval,
		SubCount:       *m,
		Sub:            kind,
		Costs:          checkpoint.Costs{Store: 4, Compare: 2, Rollback: 1},
		Lambda:         *lambda,
	}

	// Reference digest from a fault-free execution.
	clean := cfg
	clean.Lambda = 0
	want, err := dmr.Execute(clean, rng.New(0))
	if err != nil {
		log.Fatal(err)
	}
	if !want.Completed {
		log.Fatal("program does not complete fault-free (check -deadline / program)")
	}

	base := rng.New(*seed)
	ok, corrupted := 0, 0
	for i := 0; i < *runs; i++ {
		r, err := dmr.Execute(cfg, base.Split())
		if err != nil {
			log.Fatal(err)
		}
		status := "FAILED"
		if r.Completed {
			if r.FinalDigest == want.FinalDigest {
				status = "OK"
				ok++
			} else {
				status = "CORRUPT"
				corrupted++
			}
		}
		fmt.Printf("run %3d: %-7s wall=%-7d executed=%-7d faults=%-3d detections=%-3d scp=%d ccp=%d cscp=%d\n",
			i, status, r.WallCycles, r.ExecutedInstructions, r.FaultsInjected, r.Detections, r.SCPs, r.CCPs, r.CSCPs)
	}
	fmt.Printf("\n%d/%d runs committed the fault-free result; %d corrupted (must be 0)\n", ok, *runs, corrupted)
	if corrupted > 0 {
		os.Exit(1)
	}
}
