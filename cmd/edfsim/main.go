// Command edfsim exercises the multi-task extension: it builds a
// periodic task set, reports its fault-tolerant EDF feasibility at each
// processor speed, picks the energy-optimal speed, and simulates the set
// under fault injection.
//
// Usage:
//
//	edfsim                                   # the built-in avionics set
//	edfsim -tasks "800:4000:2,1500:10000:3"  # cycles:period:k triples
//	edfsim -lambda 5e-4 -horizon 200000
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/checkpoint"
	"repro/internal/cli"
	"repro/internal/cpu"
	"repro/internal/rng"
	"repro/internal/sched"
	"repro/internal/task"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("edfsim: ")

	var (
		tasks   = flag.String("tasks", "", "comma-separated cycles:period:k triples (empty = built-in set)")
		lambda  = flag.Float64("lambda", 5e-4, "fault rate per execution cycle")
		horizon = flag.Float64("horizon", 0, "simulated cycles (0 = one hyperperiod)")
		seed    = flag.Uint64("seed", 1, "rng seed")
		setting = flag.String("setting", "scp", "cost setting: scp or ccp")
	)
	showVersion := cli.VersionFlag()
	flag.Parse()
	if showVersion() {
		return
	}

	costs := checkpoint.SCPSetting()
	if *setting == "ccp" {
		costs = checkpoint.CCPSetting()
	} else if *setting != "scp" {
		log.Fatalf("unknown -setting %q", *setting)
	}

	set := task.Set{
		{Name: "attitude", Cycles: 700, Deadline: 2500, Period: 2500, FaultBudget: 2},
		{Name: "nav", Cycles: 1900, Deadline: 10000, Period: 10000, FaultBudget: 3},
		{Name: "telemetry", Cycles: 1100, Deadline: 20000, Period: 20000, FaultBudget: 2},
	}
	if *tasks != "" {
		var err error
		if set, err = sched.ParseSet(*tasks); err != nil {
			log.Fatal(err)
		}
	}
	if err := set.Validate(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("task set:")
	for _, t := range set {
		fmt.Printf("  %-10s C=%-6.0f T=D=%-7.0f k=%d  (raw U=%.3f)\n",
			t.Name, t.Cycles, t.Period, t.FaultBudget, t.Cycles/t.Period)
	}

	model := cpu.TwoSpeed()
	fmt.Println("\nfeasibility (k-fault-tolerant demand budgeted):")
	for _, pt := range model.Points() {
		ok, u, err := sched.Feasible(set, costs, pt.Freq)
		if err != nil {
			log.Fatal(err)
		}
		rmOK, _, bound, err := sched.FeasibleRM(set, costs, pt.Freq)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  f=%g: EDF feasible=%-5v (U=%.3f)  RM bound %.3f: %v\n",
			pt.Freq, ok, u, bound, rmOK)
	}

	pt, err := sched.MinSpeed(set, costs, model)
	if err != nil {
		log.Fatalf("no feasible speed: %v", err)
	}
	fmt.Printf("\nenergy-optimal speed: f=%g (V=%.2f, energy/cycle %.2f)\n",
		pt.Freq, pt.Voltage, pt.EnergyPerCycle())

	rep, err := sched.Simulate(sched.Config{
		Set: set, Costs: costs, Lambda: *lambda, Horizon: *horizon,
	}, rng.New(*seed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulation (λ=%g): %s\n", *lambda, rep)
}
