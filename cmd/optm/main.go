// Command optm prints the analytic side of the paper: the renewal-model
// curves R1(m) / R2(m) for a CSCP interval and the optimal sub-interval
// counts chosen by num_SCP / num_CCP (paper Fig. 2), for a sweep of
// interval lengths.
//
// Usage:
//
//	optm -lambda 0.0014                 # optimal m for both settings
//	optm -lambda 0.0014 -curve -t 1000  # the full R(m) series (figure data)
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/checkpoint"
	"repro/internal/cli"
	"repro/internal/validate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("optm: ")

	var (
		lambda = flag.Float64("lambda", 0.0014, "fault arrival rate λ")
		curve  = flag.Bool("curve", false, "print the R(m) series for one interval")
		tLen   = flag.Float64("t", 1000, "CSCP interval length for -curve")
		maxM   = flag.Int("maxm", 40, "largest m sampled by -curve")
		check  = flag.Bool("validate", false, "cross-check the models against the Monte-Carlo engine")
	)
	showVersion := cli.VersionFlag()
	flag.Parse()
	if showVersion() {
		return
	}

	scp := analysis.Params{Costs: checkpoint.SCPSetting(), Lambda: *lambda}
	ccp := analysis.Params{Costs: checkpoint.CCPSetting(), Lambda: *lambda}

	if *check {
		fmt.Printf("model vs engine, λ=%g (worst paper-form error first):\n", *lambda)
		for _, kind := range []checkpoint.Kind{checkpoint.SCP, checkpoint.CCP} {
			p := scp
			if kind == checkpoint.CCP {
				p = ccp
			}
			grid, err := validate.Grid(p, kind, []float64{200, 500, 1000}, []int{1, 3, 8}, 3000, 1)
			if err != nil {
				log.Fatal(err)
			}
			for _, c := range grid {
				fmt.Println(" ", c)
			}
		}
		return
	}

	if *curve {
		fmt.Printf("# R1(m), R2(m) for T=%g, λ=%g (SCP setting ts=2 tcp=20; CCP setting ts=20 tcp=2)\n", *tLen, *lambda)
		fmt.Println("m,R1_scp,R2_ccp")
		c1 := analysis.Curve(scp, checkpoint.SCP, *tLen, *maxM)
		c2 := analysis.Curve(ccp, checkpoint.CCP, *tLen, *maxM)
		for i := range c1 {
			fmt.Printf("%d,%.3f,%.3f\n", c1[i].M, c1[i].R, c2[i].R)
		}
		return
	}

	fmt.Printf("λ = %g\n", *lambda)
	fmt.Println("interval T | num_SCP m (SCP setting) | num_CCP m (CCP setting) | R1(T/m) | R2(T/m)")
	for _, t := range []float64{100, 200, 400, 800, 1600, 3200} {
		m1 := analysis.NumSCP(scp, t)
		m2 := analysis.NumCCP(ccp, t)
		r1 := analysis.R1(scp, t, t/float64(m1))
		r2 := analysis.R2(ccp, t, t/float64(m2))
		fmt.Printf("%10.0f | %23d | %23d | %8.1f | %8.1f\n", t, m1, m2, r1, r2)
	}
}
