package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/cli"
	"repro/internal/serve"
	"repro/internal/storage"
)

func TestRunExitsResourceCodeWhenJournalUnopenable(t *testing.T) {
	// A directory where the journal file should be: open fails, and the
	// process must exit 3 (resource) so supervisors can tell "fix my
	// disk" from a crash (1) or a flag typo (2).
	dir := t.TempDir()
	err := run([]string{"-journal", dir, "-manifest", ""})
	if err == nil {
		t.Fatal("run succeeded with an unopenable journal")
	}
	if got := cli.ExitCode(err); got != 3 {
		t.Fatalf("exit code = %d (%v), want 3", got, err)
	}
}

func TestRunExitsResourceCodeWhenLegacyManifestUnparseable(t *testing.T) {
	dir := t.TempDir()
	manifest := filepath.Join(dir, "simd-manifest.json")
	if err := os.WriteFile(manifest, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{
		"-journal", filepath.Join(dir, "simd.journal"),
		"-manifest", manifest,
	})
	if err == nil {
		t.Fatal("run succeeded with a corrupt legacy manifest")
	}
	if got := cli.ExitCode(err); got != 3 {
		t.Fatalf("exit code = %d (%v), want 3", got, err)
	}
}

func TestRunExitsUsageCodeOnBadFlag(t *testing.T) {
	err := run([]string{"-no-such-flag"})
	if err == nil {
		t.Fatal("run accepted an unknown flag")
	}
	if got := cli.ExitCode(err); got != 2 {
		t.Fatalf("exit code = %d (%v), want 2", got, err)
	}
}

func TestMigrateManifestReplaysLegacyJobsOnce(t *testing.T) {
	dir := t.TempDir()
	legacy := serve.Manifest{
		Drained: false,
		Jobs: []serve.ManifestEntry{
			{ID: "job-000004", Spec: serve.JobSpec{Kind: serve.JobSingle, Scheme: "A_D_S", U: 0.78, Lambda: 0.0014, Seed: 4}, State: serve.StateRunning, Attempts: 2},
			{ID: "job-000007", Spec: serve.JobSpec{Kind: serve.JobGrid, Table: "1a", Reps: 50, Seed: 7}, State: serve.StateQueued},
		},
	}
	blob, err := json.Marshal(legacy)
	if err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, "simd-manifest.json")
	if err := os.WriteFile(manifest, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	store, err := storage.OpenFileLog(filepath.Join(dir, "simd.journal"))
	if err != nil {
		t.Fatal(err)
	}
	jl := serve.NewJournal(store, 1)
	if err := migrateManifest(jl, manifest); err != nil {
		t.Fatalf("first migration: %v", err)
	}

	// The manifest is consumed: renamed *.migrated so it never replays
	// again, and a second boot (file gone) is a silent no-op.
	if _, err := os.Stat(manifest); !os.IsNotExist(err) {
		t.Errorf("legacy manifest still present after migration (err=%v)", err)
	}
	if _, err := os.Stat(manifest + ".migrated"); err != nil {
		t.Errorf("migrated manifest not preserved: %v", err)
	}
	if err := migrateManifest(jl, manifest); err != nil {
		t.Fatalf("second migration (missing file) must be a no-op: %v", err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	data, err := os.ReadFile(store.Path())
	if err != nil {
		t.Fatal(err)
	}
	rec := serve.ReplayJournal(data)
	if got := rec.UnfinishedJobs(); got != 2 {
		t.Fatalf("journal resumes %d jobs after migration, want 2", got)
	}
	byID := map[string]*serve.RecoveredJob{}
	for i := range rec.Jobs {
		byID[rec.Jobs[i].ID] = &rec.Jobs[i]
	}
	j4, ok := byID["job-000004"]
	if !ok || !j4.Unfinished() {
		t.Fatalf("job-000004 not resumable: %+v", j4)
	}
	if j4.Attempts != 2 {
		t.Errorf("job-000004 attempts = %d, want the legacy 2 preserved", j4.Attempts)
	}
	if j4.Spec.Scheme != "A_D_S" || j4.Spec.Seed != 4 {
		t.Errorf("job-000004 spec lost in migration: %+v", j4.Spec)
	}
	j7, ok := byID["job-000007"]
	if !ok || !j7.Unfinished() {
		t.Fatalf("job-000007 not resumable: %+v", j7)
	}
	if j7.Spec.Kind != serve.JobGrid || j7.Spec.Table != "1a" {
		t.Errorf("job-000007 spec lost in migration: %+v", j7.Spec)
	}

	// Replaying the same manifest bytes a second time (a crash between
	// append and rename) must not duplicate jobs: accepted records
	// deduplicate by ID.
	store2, err := storage.OpenFileLog(store.Path())
	if err != nil {
		t.Fatal(err)
	}
	jl2 := serve.NewJournal(store2, 1)
	redo := filepath.Join(dir, "redo-manifest.json")
	if err := os.WriteFile(redo, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := migrateManifest(jl2, redo); err != nil {
		t.Fatalf("re-migration: %v", err)
	}
	if err := jl2.Close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(store.Path())
	if err != nil {
		t.Fatal(err)
	}
	if rec := serve.ReplayJournal(data); rec.UnfinishedJobs() != 2 {
		t.Fatalf("double migration produced %d unfinished jobs, want 2 (dedup by ID)", rec.UnfinishedJobs())
	}
}
