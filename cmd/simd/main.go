// Command simd is the long-running simulation service: an HTTP/JSON
// job API over the experiment-grid and mission engines, with a bounded
// admission queue, per-job deadlines, panic isolation, retry with
// backoff, and graceful drain that persists an unfinished-job manifest.
//
// Usage:
//
//	simd -listen :8080
//	simd -listen :8080 -queue 128 -workers 8 -deadline 2m -drain 15s
//	simd -chaos-panic 0.1 -chaos-straggle 0.2      # self-test under chaos
//
// Submit a Table 1a grid job and fetch it:
//
//	curl -s -XPOST localhost:8080/v1/jobs \
//	  -d '{"kind":"grid","table":"1a","reps":2000,"seed":2006,"deadline_ms":60000}'
//	curl -s localhost:8080/v1/jobs/job-000001
//
// Overload answers 503 with a Retry-After header instead of queueing
// unboundedly; /readyz flips before that point so balancers can back
// off first. SIGINT/SIGTERM triggers a drain: accepted jobs finish
// within -drain, the rest are aborted and written to -manifest.
//
// Observability: GET /metrics serves the Prometheus text exposition of
// the job ledger, queue gauges, job-latency histogram and engine
// counters; GET /trace streams recent run-trace events as JSONL (?n=
// limits to the newest n); GET /debug/pprof/ serves the standard Go
// profiles. /statusz reports the same counters as /metrics — both are
// views of one registry.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/cli"
	"repro/internal/serve"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("simd: ")
	if err := run(); err != nil {
		log.Print(err)
		os.Exit(1)
	}
}

func run() error {
	var (
		listen   = flag.String("listen", ":8080", "HTTP listen address")
		queue    = flag.Int("queue", 64, "admission queue depth (beyond it, submissions shed with 503)")
		workers  = flag.Int("workers", 4, "concurrent job executors")
		gridW    = flag.Int("grid-workers", 1, "worker-pool size inside one grid job")
		deadline = flag.Duration("deadline", time.Minute, "default per-job deadline")
		maxDl    = flag.Duration("max-deadline", 10*time.Minute, "cap on client-requested deadlines")
		retries  = flag.Int("retries", 2, "retry budget for transient failures")
		drain    = flag.Duration("drain", 10*time.Second, "shutdown drain deadline")
		manifest = flag.String("manifest", "simd-manifest.json", "unfinished-job manifest path (empty disables)")

		chaosPanic    = flag.Float64("chaos-panic", 0, "inject synthetic panics at this rate (self-test)")
		chaosError    = flag.Float64("chaos-error", 0, "inject transient failures at this rate")
		chaosCancel   = flag.Float64("chaos-cancel", 0, "inject spurious cancellations at this rate")
		chaosStraggle = flag.Float64("chaos-straggle", 0, "inject straggler delays at this rate")
		chaosDelay    = flag.Duration("chaos-delay", 50*time.Millisecond, "straggler delay")
		chaosSeed     = flag.Uint64("chaos-seed", 1, "chaos draw seed")
	)
	showVersion := cli.VersionFlag()
	flag.Parse()
	if showVersion() {
		return nil
	}

	cfg := serve.Config{
		QueueDepth:     *queue,
		Workers:        *workers,
		GridWorkers:    *gridW,
		DefaultTimeout: *deadline,
		MaxTimeout:     *maxDl,
		MaxRetries:     *retries,
		ManifestPath:   *manifest,
		Logf:           log.Printf,
	}
	if *chaosPanic+*chaosError+*chaosCancel+*chaosStraggle > 0 {
		inj := chaos.New(chaos.Config{
			Seed:           *chaosSeed,
			PanicProb:      *chaosPanic,
			ErrorProb:      *chaosError,
			CancelProb:     *chaosCancel,
			CancelAfter:    *chaosDelay / 2,
			StragglerProb:  *chaosStraggle,
			StragglerDelay: *chaosDelay,
		})
		cfg.Intercept = inj.Intercept
		log.Printf("chaos injection enabled: panic=%g error=%g cancel=%g straggle=%g",
			*chaosPanic, *chaosError, *chaosCancel, *chaosStraggle)
	}

	srv := serve.New(cfg)
	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (queue %d, %d workers, %v default deadline)",
			*listen, *queue, *workers, *deadline)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case got := <-sig:
		log.Printf("received %v, draining (deadline %v)", got, *drain)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	m, err := srv.Shutdown(drainCtx)
	if err != nil {
		log.Printf("drain error: %v", err)
	}
	if len(m.Jobs) > 0 {
		log.Printf("%d jobs unfinished (drained=%v), persisted to manifest", len(m.Jobs), m.Drained)
	} else {
		log.Printf("drained cleanly")
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancelHTTP()
	if herr := httpSrv.Shutdown(httpCtx); herr != nil && err == nil {
		err = herr
	}
	c := srv.Counters()
	log.Printf("final: accepted=%d shed=%d completed=%d failed=%d canceled=%d retries=%d panics=%d",
		c.Accepted, c.Shed, c.Completed, c.Failed, c.Canceled, c.Retries, c.Panics)
	return err
}
