// Command simd is the long-running simulation service: an HTTP/JSON
// job API over the experiment-grid and mission engines, with a bounded
// admission queue, per-job deadlines, panic isolation, retry with
// backoff, graceful drain, and crash recovery from a durable job
// journal.
//
// Usage:
//
//	simd -listen :8080
//	simd -listen :8080 -queue 128 -workers 8 -deadline 2m -drain 15s
//	simd -journal simd.journal -journal-sync 64    # durability knobs
//	simd -chaos-panic 0.1 -chaos-straggle 0.2      # self-test under chaos
//
// Submit a Table 1a grid job and fetch it:
//
//	curl -s -XPOST localhost:8080/v1/jobs \
//	  -d '{"kind":"grid","table":"1a","reps":2000,"seed":2006,"deadline_ms":60000}'
//	curl -s localhost:8080/v1/jobs/job-000001
//
// Overload answers 503 with a Retry-After header (scaled to the live
// queue and observed job durations) instead of queueing unboundedly;
// /readyz flips before that point so balancers can back off first.
//
// Crash safety: with -journal set (the default), every accepted job,
// attempt, completed grid shard and terminal outcome is appended to a
// CRC-framed write-ahead journal. On boot the journal is replayed:
// finished jobs come back queryable, unfinished jobs re-enter the queue
// with their shard checkpoints and resume bit-identically. kill -9 at
// any point loses at most the progress since the last fsync batch —
// never an accepted job. SIGINT/SIGTERM triggers a graceful drain that
// ends with a journal_clean_shutdown record; a missing one on the next
// boot means the previous process crashed. A journal that cannot be
// opened or read at boot exits with code 3 (resource).
//
// A legacy drain manifest (-manifest, from older builds) is migrated
// into the journal once at boot and renamed *.migrated.
//
// Cluster mode (-role): the same binary also runs as a fault-tolerant
// coordinator/worker cluster for grid jobs.
//
//	simd -role=coordinator -listen :8080 -journal coord.journal
//	simd -role=worker -listen :8081 -coordinator http://localhost:8080
//
// The coordinator shards each grid job into (cell, rep-range) units,
// dispatches them to registered workers with leases, heartbeats, hedged
// retries and re-dispatch on failure, folds the returned shard payloads
// with the exact merge algebra (an N-node answer is byte-identical to a
// 1-node answer), journals banked shards for crash-safe resume, and
// dedups identical jobs through a content-addressed result cache.
// Workers are stateless executors; kill one mid-unit and the
// coordinator re-dispatches the lease elsewhere.
//
// Observability: GET /metrics serves the Prometheus text exposition of
// the job ledger, journal counters, queue gauges, job-latency histogram
// and engine counters; GET /trace streams recent run-trace events as
// JSONL (?n= limits to the newest n); GET /debug/pprof/ serves the
// standard Go profiles. /statusz reports the same counters as /metrics
// — both are views of one registry — plus journal and recovery
// sections.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/chaos"
	"repro/internal/cli"
	"repro/internal/serve"
	"repro/internal/storage"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("simd: ")
	err := run(os.Args[1:])
	if err != nil {
		log.Print(err)
	}
	os.Exit(cli.ExitCode(err))
}

func run(args []string) error {
	fs := flag.NewFlagSet("simd", flag.ContinueOnError)
	var (
		listen   = fs.String("listen", ":8080", "HTTP listen address")
		queue    = fs.Int("queue", 64, "admission queue depth (beyond it, submissions shed with 503)")
		workers  = fs.Int("workers", 4, "concurrent job executors")
		gridW    = fs.Int("grid-workers", 1, "worker-pool size inside one grid job")
		deadline = fs.Duration("deadline", time.Minute, "default per-job deadline")
		maxDl    = fs.Duration("max-deadline", 10*time.Minute, "cap on client-requested deadlines")
		retries  = fs.Int("retries", 2, "retry budget for transient failures")
		drain    = fs.Duration("drain", 10*time.Second, "shutdown drain deadline")

		journalPath = fs.String("journal", "simd.journal", "durable job-journal path; accepted jobs and grid shard checkpoints survive kill -9 and resume on the next boot (empty disables crash recovery)")
		journalSync = fs.Int("journal-sync", serve.DefaultSyncEvery, "cap on progress records per journal fsync batch; batches otherwise group-commit on a 250ms timer (1 = fsync every record; admissions and terminal outcomes always fsync)")
		manifest    = fs.String("manifest", "simd-manifest.json", "legacy unfinished-job manifest from pre-journal builds, migrated into the journal once and renamed *.migrated (empty disables)")

		chaosPanic    = fs.Float64("chaos-panic", 0, "inject synthetic panics at this rate (self-test)")
		chaosError    = fs.Float64("chaos-error", 0, "inject transient failures at this rate")
		chaosCancel   = fs.Float64("chaos-cancel", 0, "inject spurious cancellations at this rate")
		chaosStraggle = fs.Float64("chaos-straggle", 0, "inject straggler delays at this rate")
		chaosDelay    = fs.Duration("chaos-delay", 50*time.Millisecond, "straggler delay")
		chaosSeed     = fs.Uint64("chaos-seed", 1, "chaos draw seed")

		role        = fs.String("role", "single", "process role: single (self-contained daemon), coordinator (shards grid jobs across workers) or worker (stateless unit executor)")
		coordURL    = fs.String("coordinator", "", "worker: coordinator base URL to register with (empty skips registration)")
		advertise   = fs.String("advertise", "", "worker: base URL the coordinator should dial back (default http://127.0.0.1:<listen port>)")
		maxInflight = fs.Int("max-inflight", 0, "worker: concurrent unit bound, 503+Retry-After beyond it (0 = GOMAXPROCS)")
		unitReps    = fs.Int("unit-reps", 0, "coordinator: repetitions per dispatched work unit (0 = default 2000)")
		hedgeAfter  = fs.Duration("hedge-after", 2*time.Second, "coordinator: duplicate a straggling unit to a second worker after this long (<0 disables)")
		lease       = fs.Duration("lease", 15*time.Second, "coordinator: work-unit lease (per-dispatch deadline); expiry re-dispatches")
		heartbeat   = fs.Duration("heartbeat", 500*time.Millisecond, "coordinator: worker heartbeat probe interval")
		clusterKey  = fs.String("cluster-key", "", "shared HMAC key for shard-result authentication; set identically on coordinator and workers (empty disables)")

		showVersion = fs.Bool("version", false, "print build version and exit")
	)
	if err := fs.Parse(args); err != nil {
		return cli.Usagef("%v", err)
	}
	if *showVersion {
		fmt.Println(cli.Version())
		return nil
	}
	if armed, err := chaos.ArmKillFromEnv(); err != nil {
		return cli.Usagef("%v", err)
	} else if armed != "" {
		log.Printf("kill point armed: %s (the process will SIGKILL itself there)", armed)
	}

	switch *role {
	case "single":
		// fall through to the self-contained daemon below
	case "worker":
		return runWorker(*listen, *coordURL, *advertise, *maxInflight, []byte(*clusterKey))
	case "coordinator":
		return runCoordinator(*listen, *journalPath, *journalSync, *unitReps, *hedgeAfter, *lease, *heartbeat, []byte(*clusterKey))
	default:
		return cli.Usagef("unknown -role %q (want single, coordinator or worker)", *role)
	}

	cfg := serve.Config{
		QueueDepth:     *queue,
		Workers:        *workers,
		GridWorkers:    *gridW,
		DefaultTimeout: *deadline,
		MaxTimeout:     *maxDl,
		MaxRetries:     *retries,
		Logf:           log.Printf,
	}

	if *journalPath != "" {
		store, err := storage.OpenFileLog(*journalPath)
		if err != nil {
			return cli.Resourcef("opening journal %s: %v", *journalPath, err)
		}
		jl := serve.NewJournal(store, *journalSync)
		defer jl.Close()
		if *manifest != "" {
			if err := migrateManifest(jl, *manifest); err != nil {
				return err
			}
		}
		data, err := store.ReadAll()
		if err != nil {
			return cli.Resourcef("reading journal %s: %v", *journalPath, err)
		}
		rec := serve.ReplayJournal(data)
		log.Printf("journal %s: %d records (%d corrupt skipped), %d jobs, %d to resume, clean_shutdown=%v",
			*journalPath, rec.Records, rec.Corrupt, len(rec.Jobs), rec.UnfinishedJobs(), rec.CleanShutdown)
		cfg.Journal = jl
		cfg.Recovery = rec
	}

	if *chaosPanic+*chaosError+*chaosCancel+*chaosStraggle > 0 {
		inj := chaos.New(chaos.Config{
			Seed:           *chaosSeed,
			PanicProb:      *chaosPanic,
			ErrorProb:      *chaosError,
			CancelProb:     *chaosCancel,
			CancelAfter:    *chaosDelay / 2,
			StragglerProb:  *chaosStraggle,
			StragglerDelay: *chaosDelay,
		})
		cfg.Intercept = inj.Intercept
		log.Printf("chaos injection enabled: panic=%g error=%g cancel=%g straggle=%g",
			*chaosPanic, *chaosError, *chaosCancel, *chaosStraggle)
	}

	srv := serve.New(cfg)
	httpSrv := &http.Server{Addr: *listen, Handler: srv.Handler()}

	errCh := make(chan error, 1)
	go func() {
		log.Printf("listening on %s (queue %d, %d workers, %v default deadline)",
			*listen, *queue, *workers, *deadline)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case got := <-sig:
		log.Printf("received %v, draining (deadline %v)", got, *drain)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	m, err := srv.Shutdown(drainCtx)
	if err != nil {
		log.Printf("drain error: %v", err)
	}
	if len(m.Jobs) > 0 {
		log.Printf("%d jobs unfinished (drained=%v), resumable from the journal", len(m.Jobs), m.Drained)
	} else {
		log.Printf("drained cleanly")
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancelHTTP()
	if herr := httpSrv.Shutdown(httpCtx); herr != nil && err == nil {
		err = herr
	}
	c := srv.Counters()
	log.Printf("final: accepted=%d shed=%d completed=%d failed=%d canceled=%d retries=%d panics=%d",
		c.Accepted, c.Shed, c.Completed, c.Failed, c.Canceled, c.Retries, c.Panics)
	return err
}

// migrateManifest replays a pre-journal drain manifest into the journal
// once: each unfinished job becomes an accepted record (journal replay
// deduplicates by ID, so a crash between append and rename is
// harmless), then the file is renamed *.migrated so it never replays
// again. A missing file is the normal case and free.
func migrateManifest(jl *serve.Journal, path string) error {
	blob, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return cli.Resourcef("reading legacy manifest %s: %v", path, err)
	}
	var m serve.Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return cli.Resourcef("parsing legacy manifest %s: %v", path, err)
	}
	for _, e := range m.Jobs {
		if err := jl.AppendAccepted(e.ID, e.Spec); err != nil {
			return cli.Resourcef("migrating %s into the journal: %v", e.ID, err)
		}
		if e.Attempts > 0 {
			if err := jl.AppendAttempt(e.ID, e.Attempts); err != nil {
				return cli.Resourcef("migrating %s into the journal: %v", e.ID, err)
			}
		}
	}
	if err := os.Rename(path, path+".migrated"); err != nil {
		return cli.Resourcef("renaming migrated manifest %s: %v", path, err)
	}
	log.Printf("migrated %d unfinished jobs from legacy manifest %s (renamed to %s.migrated)",
		len(m.Jobs), path, path)
	return nil
}
