// Cluster roles of the simd binary: a stateless worker that executes
// (cell, rep-range) units, and a coordinator that shards grid jobs
// across registered workers with leases, heartbeats, hedged retries and
// a crash-safe shard journal.

package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/cluster"
	"repro/internal/serve"
	"repro/internal/storage"
)

// runWorker serves the unit-execution API and, when a coordinator URL
// is given, keeps registering until the handshake succeeds.
func runWorker(listen, coordURL, advertise string, maxInflight int, key []byte) error {
	w := cluster.NewWorker(cluster.WorkerConfig{
		MaxInflight: maxInflight,
		Key:         key,
		Logf:        log.Printf,
	})
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return cli.Resourcef("listening on %s: %v", listen, err)
	}
	if advertise == "" {
		addr, ok := ln.Addr().(*net.TCPAddr)
		if !ok {
			return cli.Usagef("cannot derive -advertise from listener %s; set it explicitly", ln.Addr())
		}
		host := addr.IP.String()
		if addr.IP == nil || addr.IP.IsUnspecified() {
			host = "127.0.0.1"
		}
		advertise = fmt.Sprintf("http://%s", net.JoinHostPort(host, fmt.Sprint(addr.Port)))
	}
	httpSrv := &http.Server{Handler: w.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("worker listening on %s (advertising %s)", ln.Addr(), advertise)
		if serr := httpSrv.Serve(ln); !errors.Is(serr, http.ErrServerClosed) {
			errCh <- serr
			return
		}
		errCh <- nil
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if coordURL != "" {
		go func() {
			if rerr := cluster.RegisterLoop(ctx, nil, coordURL, advertise, log.Printf); rerr == nil {
				log.Printf("registered with coordinator %s", coordURL)
			}
		}()
	}

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
		log.Printf("shutting down worker")
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	return httpSrv.Shutdown(shutCtx)
}

// runCoordinator boots the coordinator, replaying its journal so
// unfinished jobs resume from their banked shards.
func runCoordinator(listen, journalPath string, journalSync, unitReps int, hedgeAfter, lease, heartbeat time.Duration, key []byte) error {
	cfg := cluster.Config{
		UnitReps:          unitReps,
		HedgeAfter:        hedgeAfter,
		LeaseTimeout:      lease,
		HeartbeatInterval: heartbeat,
		Key:               key,
		Logf:              log.Printf,
	}
	if journalPath != "" {
		store, err := storage.OpenFileLog(journalPath)
		if err != nil {
			return cli.Resourcef("opening journal %s: %v", journalPath, err)
		}
		jl := serve.NewJournal(store, journalSync)
		defer jl.Close()
		data, err := store.ReadAll()
		if err != nil {
			return cli.Resourcef("reading journal %s: %v", journalPath, err)
		}
		rec := serve.ReplayJournal(data)
		log.Printf("journal %s: %d records (%d corrupt skipped), %d jobs, %d to resume",
			journalPath, rec.Records, rec.Corrupt, len(rec.Jobs), rec.UnfinishedJobs())
		cfg.Journal = jl
		cfg.Recovery = rec
	}
	coord := cluster.New(cfg)
	httpSrv := &http.Server{Addr: listen, Handler: coord.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("coordinator listening on %s", listen)
		if serr := httpSrv.ListenAndServe(); !errors.Is(serr, http.ErrServerClosed) {
			errCh <- serr
			return
		}
		errCh <- nil
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		coord.Close()
		return err
	case got := <-sig:
		log.Printf("received %v, shutting down coordinator (unfinished jobs resume from the journal)", got)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := httpSrv.Shutdown(shutCtx)
	coord.Close()
	return err
}
