// Command tables regenerates the paper's evaluation tables (1a…4b):
// for every grid cell it Monte-Carlo-simulates the four schemes and
// prints P (probability of timely completion) and E (energy), exactly
// the rows the paper reports, optionally side by side with the published
// values.
//
// Usage:
//
//	tables                     # all eight sub-tables, 10000 reps/cell
//	tables -table 1a -reps 2000
//	tables -compare            # paper-vs-measured columns
//	tables -csv                # machine-readable output
//	tables -shape              # check the qualitative claims
//	tables -trace-out t.jsonl  # record per-cell run-trace events
//
// Exit codes: 0 on success, 1 on a runtime failure, 2 on a flag value
// the command cannot act on, 3 when -shape finds a qualitative claim
// violated (the tables are still printed first).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/cli"
	"repro/internal/experiment"
	"repro/internal/telemetry"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("tables: ")
	if err := run(); err != nil {
		log.Print(err)
		os.Exit(cli.ExitCode(err))
	}
}

func run() error {
	var (
		tableID  = flag.String("table", "", "sub-table to run (1a…4b); empty = all")
		reps     = flag.Int("reps", experiment.DefaultReps, "Monte-Carlo repetitions per cell")
		seed     = flag.Uint64("seed", 2006, "base seed (runs are reproducible per seed)")
		compare  = flag.Bool("compare", false, "print paper-vs-measured comparison")
		csv      = flag.Bool("csv", false, "print CSV instead of markdown")
		shape    = flag.Bool("shape", false, "check the paper's qualitative claims")
		score    = flag.Bool("score", false, "print measured-vs-published agreement scores")
		quiet    = flag.Bool("q", false, "suppress per-cell progress")
		traceOut = flag.String("trace-out", "", "write per-cell run-trace events (JSONL) to this file")
		analytic = flag.Bool("analytic", false, "append the Young/Daly analytic interval comparators per fault rate")
	)
	showVersion := cli.VersionFlag()
	flag.Parse()
	if showVersion() {
		return nil
	}

	runner := experiment.Runner{Reps: *reps, Seed: *seed}
	if !*quiet {
		runner.Progress = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	// -trace-out observes through the engine's sink; it never feeds back
	// into the simulation, so traced and untraced runs print the same
	// tables bit for bit.
	var tracer *telemetry.Tracer
	if *traceOut != "" {
		tracer = telemetry.NewTracer(0)
		runner.Sink = telemetry.NewRegistrySink(nil, tracer)
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				log.Printf("trace-out: %v", err)
				return
			}
			defer f.Close()
			if err := tracer.WriteJSONL(f, 0); err != nil {
				log.Printf("trace-out: %v", err)
			}
		}()
	}

	specs := experiment.Tables()
	if *tableID != "" {
		spec, err := experiment.TableByID(*tableID)
		if err != nil {
			return cli.Usagef("%v", err)
		}
		specs = []experiment.Spec{spec}
	}

	shapeFails := 0
	for _, spec := range specs {
		tbl, err := runner.RunTable(spec)
		if err != nil {
			return err
		}
		switch {
		case *csv:
			fmt.Print(tbl.CSV())
		case *compare:
			fmt.Println(tbl.Comparison())
		default:
			fmt.Println(tbl.Markdown())
		}
		if *shape {
			lines := tbl.ShapeReport()
			for _, line := range lines {
				if strings.Contains(line, "[FAIL]") {
					shapeFails++
				}
			}
			fmt.Println(strings.Join(lines, "\n"))
			fmt.Println()
		}
		if *score {
			if sc, ok := tbl.Score(); ok {
				fmt.Printf("table %s (all columns): %s\n", spec.ID, sc)
			}
			if sc, ok := tbl.BaselineScore(); ok {
				fmt.Printf("table %s (baselines):   %s\n", spec.ID, sc)
			}
			fmt.Println()
		}
		if *analytic {
			// Classical single-level comparators at the table's CSCP cost.
			// Off by default so existing output stays byte-identical.
			c := spec.Costs.CSCPCycles()
			for _, lam := range spec.Lambdas {
				ai, aerr := analysis.Intervals(c, lam)
				if aerr != nil {
					fmt.Printf("table %s λ=%g: %v\n", spec.ID, lam, aerr)
					continue
				}
				fmt.Printf("table %s λ=%g: MTBF=%.0f τ_Young=%.1f τ_Daly=%.1f (c=%.0f)\n",
					spec.ID, lam, ai.MTBF, ai.Young, ai.Daly, c)
			}
			fmt.Println()
		}
	}
	if shapeFails > 0 {
		return cli.Checkf("shape check: %d qualitative claim(s) violated", shapeFails)
	}
	return nil
}
