// Command reproduce regenerates every artefact of the reproduction into
// an output directory: the eight paper tables (markdown, CSV and
// paper-vs-measured comparison), the qualitative shape report, the
// agreement scores, the Fig. 2 analytic curves, the three parameter
// sweeps, and the model-validation grid. One command, one directory,
// the whole evaluation.
//
// Usage:
//
//	reproduce -out artifacts            # full 10000 reps (minutes)
//	reproduce -out artifacts -reps 2000 # faster, noisier
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/checkpoint"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/validate"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("reproduce: ")

	var (
		out  = flag.String("out", "artifacts", "output directory")
		reps = flag.Int("reps", experiment.DefaultReps, "Monte-Carlo repetitions per table cell")
		seed = flag.Uint64("seed", 2006, "base seed")
	)
	showVersion := cli.VersionFlag()
	flag.Parse()
	if showVersion() {
		return
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	write := func(name, content string) {
		path := filepath.Join(*out, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", path)
	}

	// 1. The paper's tables.
	runner := experiment.Runner{Reps: *reps, Seed: *seed, Progress: func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}}
	var md, csv, cmp, shapes, scores strings.Builder
	for _, spec := range experiment.Tables() {
		tbl, err := runner.RunTable(spec)
		if err != nil {
			log.Fatal(err)
		}
		md.WriteString(tbl.Markdown() + "\n")
		csv.WriteString(tbl.CSV())
		cmp.WriteString(tbl.Comparison() + "\n")
		shapes.WriteString(strings.Join(tbl.ShapeReport(), "\n") + "\n")
		if sc, ok := tbl.Score(); ok {
			fmt.Fprintf(&scores, "table %s (all columns):  %s\n", spec.ID, sc)
		}
		if sc, ok := tbl.BaselineScore(); ok {
			fmt.Fprintf(&scores, "table %s (baselines):    %s\n", spec.ID, sc)
		}
	}
	for _, spec := range experiment.ExtensionTables() {
		tbl, err := runner.RunExtensionTable(spec)
		if err != nil {
			log.Fatal(err)
		}
		md.WriteString(tbl.Markdown() + "\n")
		csv.WriteString(tbl.CSV())
	}
	write("tables.md", md.String())
	write("tables.csv", csv.String())
	write("paper_vs_measured.md", cmp.String())
	write("shape_report.txt", shapes.String())
	write("agreement_scores.txt", scores.String())

	// 2. Fig. 2 analytic curves.
	var curves strings.Builder
	curves.WriteString("m,R1_scp_T1000,R2_ccp_T1000\n")
	scp := analysis.Params{Costs: checkpoint.SCPSetting(), Lambda: 0.0014}
	ccp := analysis.Params{Costs: checkpoint.CCPSetting(), Lambda: 0.0014}
	c1 := analysis.Curve(scp, checkpoint.SCP, 1000, 40)
	c2 := analysis.Curve(ccp, checkpoint.CCP, 1000, 40)
	for i := range c1 {
		fmt.Fprintf(&curves, "%d,%.3f,%.3f\n", c1[i].M, c1[i].R, c2[i].R)
	}
	write("fig2_curves.csv", curves.String())

	// 3. Parameter sweeps.
	sweepReps := *reps / 5
	if sweepReps < 200 {
		sweepReps = 200
	}
	cfg := sweep.Config{
		U: 0.78, UFreq: 1, Deadline: experiment.Deadline, K: 5,
		Costs: checkpoint.SCPSetting(), Lambda: 0.0014,
		Reps: sweepReps, Seed: *seed,
	}
	schemes := []sim.Scheme{
		core.NewPoissonScheme(1), core.NewKFTScheme(1),
		core.NewADTDVS(), core.NewAdaptDVSSCP(), core.NewAdaptDVSCCP(),
	}
	lam, err := sweep.Lambda(cfg, schemes, seqValues(2e-4, 2e-3, 10))
	if err != nil {
		log.Fatal(err)
	}
	write("sweep_lambda.csv", lam.CSV())
	ut, err := sweep.Utilization(cfg, schemes, seqValues(0.70, 0.95, 11))
	if err != nil {
		log.Fatal(err)
	}
	write("sweep_utilization.csv", ut.CSV())
	cr, err := sweep.CostRatio(cfg, schemes, seqValues(0.05, 0.95, 10))
	if err != nil {
		log.Fatal(err)
	}
	write("sweep_costratio.csv", cr.CSV())

	// 4. Model validation grid.
	var val strings.Builder
	val.WriteString("model vs engine (worst paper-form error first):\n")
	for _, kind := range []checkpoint.Kind{checkpoint.SCP, checkpoint.CCP} {
		p := scp
		if kind == checkpoint.CCP {
			p = ccp
		}
		grid, err := validate.Grid(p, kind, []float64{200, 500, 1000}, []int{1, 3, 8}, 3000, *seed)
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range grid {
			fmt.Fprintf(&val, "  %s\n", c)
		}
	}
	write("model_validation.txt", val.String())

	fmt.Println("done")
}

func seqValues(from, to float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = from + (to-from)*float64(i)/float64(n-1)
	}
	return out
}
