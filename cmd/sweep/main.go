// Command sweep traces P and E per scheme over a swept parameter —
// fault rate, utilisation, the store/compare cost split, or the tiered
// store's checkpoint-set capacity — as CSV series, the figure-like
// counterpart of the paper's tables.
//
// Usage:
//
//	sweep -kind lambda -from 2e-4 -to 2e-3 -steps 10
//	sweep -kind u -from 0.70 -to 0.95 -steps 11
//	sweep -kind costratio -from 0.05 -to 0.95 -steps 10
//	sweep -kind storecap -ks 0,8,4,2,1
//
// Exit codes: 0 on success, 1 on a runtime failure, 2 on a flag value
// the command cannot act on.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/checkpoint"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sweep"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sweep: ")
	if err := run(); err != nil {
		log.Print(err)
		os.Exit(cli.ExitCode(err))
	}
}

func run() error {
	var (
		kind    = flag.String("kind", "lambda", "swept parameter: lambda | u | costratio | storecap")
		ks      = flag.String("ks", "0,12,8,6,4,3,2,1", "retention bounds for -kind storecap, comma-separated (0 = unlimited store)")
		from    = flag.Float64("from", 2e-4, "first swept value")
		to      = flag.Float64("to", 2e-3, "last swept value")
		steps   = flag.Int("steps", 10, "number of sweep points")
		u       = flag.Float64("u", 0.78, "task utilisation (fixed unless swept)")
		lambda  = flag.Float64("lambda", 0.0014, "fault rate (fixed unless swept)")
		k       = flag.Int("k", 5, "fault budget")
		setting = flag.String("setting", "scp", "cost setting: scp or ccp (fixed unless costratio)")
		reps    = flag.Int("reps", 2000, "repetitions per point")
		seed    = flag.Uint64("seed", 1, "base seed")
	)
	showVersion := cli.VersionFlag()
	flag.Parse()
	if showVersion() {
		return nil
	}

	if *steps < 2 && *kind != "storecap" {
		return cli.Usagef("-steps must be at least 2")
	}
	values := make([]float64, *steps)
	for i := range values {
		values[i] = *from + (*to-*from)*float64(i)/float64(*steps-1)
	}

	costs := checkpoint.SCPSetting()
	if *setting == "ccp" {
		costs = checkpoint.CCPSetting()
	} else if *setting != "scp" {
		return cli.Usagef("unknown -setting %q", *setting)
	}

	cfg := sweep.Config{
		U: *u, UFreq: 1, Deadline: 10000, K: *k,
		Costs: costs, Lambda: *lambda,
		Reps: *reps, Seed: *seed,
	}
	schemes := []sim.Scheme{
		core.NewPoissonScheme(1),
		core.NewKFTScheme(1),
		core.NewADTDVS(),
		core.NewAdaptDVSSCP(),
		core.NewAdaptDVSCCP(),
	}

	var (
		ser sweep.Series
		err error
	)
	switch *kind {
	case "lambda":
		ser, err = sweep.Lambda(cfg, schemes, values)
	case "u":
		ser, err = sweep.Utilization(cfg, schemes, values)
	case "costratio":
		ser, err = sweep.CostRatio(cfg, schemes, values)
	case "storecap":
		var kvals []int
		for _, tok := range strings.Split(*ks, ",") {
			kv, perr := strconv.Atoi(strings.TrimSpace(tok))
			if perr != nil {
				return cli.Usagef("bad -ks entry %q", tok)
			}
			kvals = append(kvals, kv)
		}
		ser, err = sweep.StoreCapacity(cfg, schemes, kvals)
	default:
		return cli.Usagef("unknown -kind %q", *kind)
	}
	if err != nil {
		return err
	}
	fmt.Printf("# %s (U=%g λ=%g k=%d reps=%d)\n", ser.Name, *u, *lambda, *k, *reps)
	fmt.Print(ser.CSV())
	return nil
}
