// Command missioncmp compares checkpointing schemes over a long-horizon
// mission: repeated task frames drawing their measured energy from a
// battery with optional duty-cycled harvest. It reports frames flown,
// deadline misses and the end condition per scheme — the system-level
// view of the paper's P/E trade.
//
// Usage:
//
//	missioncmp                                 # defaults: Table 1(a) anchor frame
//	missioncmp -battery 5e8 -frames 50000
//	missioncmp -harvest 3e4 -duty 0.6 -period 100
//	missioncmp -burst                          # MMPP fault environment
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/battery"
	"repro/internal/checkpoint"
	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mission"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/tmr"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("missioncmp: ")

	var (
		u        = flag.Float64("u", 0.78, "frame utilisation U = N/(f1·D)")
		lambda   = flag.Float64("lambda", 0.0014, "fault rate")
		k        = flag.Int("k", 5, "fault budget per frame")
		setting  = flag.String("setting", "scp", "cost setting: scp or ccp")
		capacity = flag.Float64("battery", 3e8, "battery capacity (V²·cycles)")
		frames   = flag.Int("frames", 20000, "frame budget")
		harvest  = flag.Float64("harvest", 0, "harvest energy per lit frame (0 = none)")
		duty     = flag.Float64("duty", 1, "harvest duty cycle (fraction of frames lit)")
		period   = flag.Int("period", 100, "harvest duty period in frames")
		burst    = flag.Bool("burst", false, "use a bursty (MMPP) fault environment at the same average rate")
		abort    = flag.Bool("abort", false, "end the mission at the first deadline miss")
		seed     = flag.Uint64("seed", 1, "base seed")
	)
	showVersion := cli.VersionFlag()
	flag.Parse()
	if showVersion() {
		return
	}

	costs := checkpoint.SCPSetting()
	if *setting == "ccp" {
		costs = checkpoint.CCPSetting()
	} else if *setting != "scp" {
		log.Fatalf("unknown -setting %q", *setting)
	}

	tk, err := task.FromUtilization("frame", *u, 1, 10000, *k)
	if err != nil {
		log.Fatal(err)
	}
	frame := sim.Params{Task: tk, Costs: costs, Lambda: *lambda}
	if *burst {
		truth := *lambda
		// Quiet/burst split keeping the stationary rate at λ.
		quiet, burstRate := truth/5, truth*5
		meanQuiet, meanBurst := 8000.0, 8000.0*(truth-quiet)/(burstRate-truth)
		frame.FaultProcess = func(src *rng.Source) fault.Process {
			return fault.NewMMPP(quiet, burstRate, meanQuiet, meanBurst, src)
		}
	}

	cfg := mission.Config{
		Frame:           frame,
		BatteryCapacity: *capacity,
		Harvest:         battery.Source{PerFrame: *harvest, DutyCycle: *duty, Period: *period},
		MaxFrames:       *frames,
		AbortOnMiss:     *abort,
	}
	schemes := []sim.Scheme{
		core.NewPoissonScheme(1),
		core.NewPoissonScheme(2),
		core.NewADTDVS(),
		core.NewAdaptDVSSCP(),
		core.NewAdaptDVSCCP(),
		tmr.NewAdaptive(),
	}

	fmt.Printf("frame: N=%.0f D=%.0f k=%d λ=%g (%s setting, burst=%v)\n",
		tk.Cycles, tk.Deadline, *k, *lambda, *setting, *burst)
	fmt.Printf("battery %.3g, harvest %.3g×%.0f%% duty, budget %d frames\n\n",
		*capacity, *harvest, *duty*100, *frames)
	fmt.Println("scheme            frames   misses  E/frame   end")
	reports, err := mission.Compare(cfg, schemes, *seed)
	if err != nil {
		log.Fatal(err)
	}
	for i, r := range reports {
		fmt.Printf("%-16s  %6d   %6d  %8.0f  %s\n",
			schemes[i].Name(), r.Frames, r.Misses, r.FrameEnergy.E, r.Reason)
	}
}
