package repro

import (
	"repro/internal/battery"
	"repro/internal/storage"
)

// This file exposes the platform-modelling substrates: the stable
// storage and inter-processor links that checkpoint costs derive from,
// and the battery/energy-source models that make the paper's platforms
// "energy-constrained".

// StorageDevice is a stable-storage target for checkpoint images.
type StorageDevice = storage.Device

// NVRAM is word-granular non-volatile memory (FRAM/MRAM class).
type NVRAM = storage.NVRAM

// Flash is page-granular storage with finite endurance.
type Flash = storage.Flash

// Link is the inter-processor channel a comparison checkpoint uses.
type Link = storage.Link

// Platform bundles the hardware a checkpoint cost model derives from.
type Platform = storage.Platform

// SCPPlatform returns hardware whose derived costs reproduce the paper's
// §4.1 regime (fast NVRAM, slow serial link → ts=2, tcp=20).
func SCPPlatform() Platform { return storage.SCPPlatform() }

// CCPPlatform returns hardware whose derived costs reproduce the paper's
// §4.2 regime (page flash, fast digest bus → ts=20, tcp=2).
func CCPPlatform() Platform { return storage.CCPPlatform() }

// FlashLifetime estimates mission seconds until flash wear-out for a
// checkpoint cadence; see storage.FlashLifetime.
func FlashLifetime(d Flash, stateBytes, totalPages int, storesPerSecond float64) (float64, error) {
	return storage.FlashLifetime(d, stateBytes, totalPages, storesPerSecond)
}

// BatteryPack is a finite energy store in the simulator's normalised
// V²·cycles units.
type BatteryPack = battery.Pack

// EnergySource is a recharging profile (e.g. duty-cycled solar).
type EnergySource = battery.Source

// NewBattery returns a full pack of the given capacity.
func NewBattery(capacity float64) (*BatteryPack, error) { return battery.New(capacity) }

// Mission simulates frames drawing perFrame energy against the pack with
// the source recharging; it returns the frames completed before the pack
// runs flat (== maxFrames means sustainable over the horizon).
func Mission(p *BatteryPack, s EnergySource, perFrame float64, maxFrames int) (int, error) {
	return battery.Mission(p, s, perFrame, maxFrames)
}
